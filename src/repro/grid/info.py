"""The grid information service.

Stand-in for the Globus MDS / Network Weather Service the paper cites as
the source of "external information like load at a remote site or the
location of a dataset".  Schedulers query this object rather than peeking
at sites directly, which lets us optionally serve *stale* snapshots (a
configurable refresh interval) to study sensitivity to information lag —
an extension; the paper's results use live information.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set

import random

from repro.grid.catalog import ReplicaCatalog
from repro.sim.core import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.site import Site


class InformationService:
    """Queryable view of site loads and replica locations.

    Parameters
    ----------
    sim:
        The simulator.
    sites:
        Name → :class:`~repro.grid.site.Site` mapping (shared, live).
    catalog:
        The replica catalog.
    refresh_interval_s:
        0 (default) serves live values; > 0 serves snapshots refreshed
        periodically, modelling MDS/NWS staleness.
    """

    def __init__(
        self,
        sim: Simulator,
        sites: Dict[str, "Site"],
        catalog: ReplicaCatalog,
        refresh_interval_s: float = 0.0,
    ) -> None:
        if refresh_interval_s < 0:
            raise ValueError(
                f"refresh interval must be >= 0, got {refresh_interval_s!r}")
        self.sim = sim
        self.sites = sites
        self.catalog = catalog
        self.refresh_interval_s = refresh_interval_s
        # The site set is fixed once the grid is wired, and every external
        # scheduler consults site_names per job — sort once, not per call.
        self._site_names: List[str] = sorted(sites)
        # Fault injection: sites currently down are hidden from scheduler
        # queries.  When the set is empty (always, in fault-free runs) the
        # original cached list is served unchanged.
        self._unavailable: Set[str] = set()
        self._available_names: List[str] = self._site_names
        self._snapshot: Optional[Dict[str, int]] = None
        if refresh_interval_s > 0:
            self._snapshot = self._take_snapshot()
            sim.process(self._refresher(), name="info-refresher")

    # -- staleness machinery ---------------------------------------------------

    def _take_snapshot(self) -> Dict[str, int]:
        return {name: site.load for name, site in self.sites.items()}

    def _refresher(self):
        while True:
            yield self.sim.timeout(self.refresh_interval_s)
            self._snapshot = self._take_snapshot()

    # -- queries ----------------------------------------------------------------

    @property
    def site_names(self) -> List[str]:
        """*Available* site names, sorted (deterministic iteration order).

        The list is cached (the site set never changes after wiring, and
        availability only changes on fault transitions) and shared between
        calls — treat it as read-only.  Down sites are excluded so
        schedulers stop considering them; in fault-free runs this is the
        identical all-sites list.
        """
        return self._available_names

    def mark_site_down(self, site: str) -> None:
        """Hide a failed site from scheduler queries (fault injection)."""
        if site not in self.sites:
            raise KeyError(f"unknown site {site!r}")
        self._unavailable.add(site)
        self._available_names = [
            name for name in self._site_names
            if name not in self._unavailable]

    def mark_site_up(self, site: str) -> None:
        """Re-advertise a recovered site."""
        self._unavailable.discard(site)
        if self._unavailable:
            self._available_names = [
                name for name in self._site_names
                if name not in self._unavailable]
        else:
            self._available_names = self._site_names

    def load(self, site: str) -> int:
        """The paper's load metric: jobs waiting to run at ``site``."""
        if self._snapshot is not None:
            try:
                return self._snapshot[site]
            except KeyError:
                raise KeyError(f"unknown site {site!r}") from None
        try:
            return self.sites[site].load
        except KeyError:
            raise KeyError(f"unknown site {site!r}") from None

    def loads(self) -> Dict[str, int]:
        """Load of every site."""
        if self._snapshot is not None:
            return dict(self._snapshot)
        return self._take_snapshot()

    def least_loaded(self, candidates: Optional[Iterable[str]] = None,
                     rng: Optional[random.Random] = None) -> str:
        """The least-loaded site among ``candidates`` (default: all).

        Ties are broken uniformly at random when ``rng`` is given, else by
        site name — random tie-breaking avoids herd behaviour when many
        sites are idle, which matters early in a run.
        """
        names = sorted(candidates) if candidates is not None else self.site_names
        if not names:
            raise ValueError("no candidate sites")
        best_load: Optional[int] = None
        best: List[str] = []
        for name in names:
            site_load = self.load(name)
            if best_load is None or site_load < best_load:
                best_load = site_load
                best = [name]
            elif site_load == best_load:
                best.append(name)
        if rng is not None and len(best) > 1:
            return rng.choice(best)
        return best[0]

    def dataset_locations(self, dataset_name: str) -> List[str]:
        """*Available* sites holding a replica of the dataset."""
        locations = self.catalog.locations(dataset_name)
        if self._unavailable:
            locations = [s for s in locations
                         if s not in self._unavailable]
        return locations

    def sites_with_all(self, dataset_names: Iterable[str]) -> List[str]:
        """Available sites holding *all* given datasets (multi-input jobs)."""
        names = list(dataset_names)
        if not names:
            return self.site_names
        result = set(self.catalog.location_set(names[0]))
        for name in names[1:]:
            if not result:
                break
            result &= self.catalog.location_set(name)
        if self._unavailable:
            result -= self._unavailable
        return sorted(result)

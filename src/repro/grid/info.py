"""The grid information service.

Stand-in for the Globus MDS / Network Weather Service the paper cites as
the source of "external information like load at a remote site or the
location of a dataset".  Schedulers query this object rather than peeking
at sites directly, which lets us serve *stale* answers to study
sensitivity to information lag (the paper's results use live information).

Three staleness mechanisms, unified under one
:class:`~repro.grid.staleness.InfoPolicy`:

* **Load snapshots** (``refresh_interval_s``) — site loads are served
  from a snapshot refreshed periodically, modelling MDS/NWS cache TTLs.
* **Catalog propagation delay** (``catalog_delay_s``) — replica-location
  queries are routed through a
  :class:`~repro.grid.staleness.StaleReplicaView` that sees catalog
  changes only after a fixed delay, so schedulers can chase phantom
  replicas and miss fresh ones.
* **Query timeout fallback** (``query_timeout_s``) — a site marked stale
  (:meth:`mark_stale`) has its load served from the last-known value
  until that record ages out, modelling an info query that times out and
  falls back to cached data.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

import random

from repro.grid.catalog import ReplicaCatalog
from repro.grid.staleness import InfoPolicy, StaleReplicaView
from repro.sim.core import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.site import Site


class InformationService:
    """Queryable view of site loads and replica locations.

    Parameters
    ----------
    sim:
        The simulator.
    sites:
        Name → :class:`~repro.grid.site.Site` mapping (shared, live).
    catalog:
        The replica catalog.
    refresh_interval_s:
        0 (default) serves live values; > 0 serves snapshots refreshed
        periodically, modelling MDS/NWS staleness.  Shorthand for a
        policy with only that knob set; ignored when ``policy`` is given.
    policy:
        Full information-quality policy.  A policy with
        ``catalog_delay_s > 0`` additionally installs a
        :class:`~repro.grid.staleness.StaleReplicaView` between the
        schedulers and the catalog.
    """

    def __init__(
        self,
        sim: Simulator,
        sites: Dict[str, "Site"],
        catalog: ReplicaCatalog,
        refresh_interval_s: float = 0.0,
        policy: Optional[InfoPolicy] = None,
    ) -> None:
        if refresh_interval_s < 0:
            raise ValueError(
                f"refresh interval must be >= 0, got {refresh_interval_s!r}")
        if policy is None:
            policy = InfoPolicy(refresh_interval_s=refresh_interval_s)
        self.sim = sim
        self.sites = sites
        self.catalog = catalog
        self.policy = policy
        self.refresh_interval_s = policy.refresh_interval_s
        # The site set is fixed once the grid is wired, and every external
        # scheduler consults site_names per job — sort once, not per call.
        self._site_names: List[str] = sorted(sites)
        # Fault injection: sites currently down are hidden from scheduler
        # queries.  When the set is empty (always, in fault-free runs) the
        # original cached list is served unchanged.
        self._unavailable: Set[str] = set()
        # Observed health: sites the failure detector currently suspects
        # (breaker open/half-open).  Kept separate from ``_unavailable``
        # because the two channels have different owners — the fault
        # oracle vs. the detector — and clear independently.
        self._suspected: Set[str] = set()
        # Union of both hide channels; the only set query paths consult.
        self._hidden: Set[str] = set()
        self._available_names: List[str] = self._site_names
        self._snapshot: Optional[Dict[str, int]] = None
        if self.refresh_interval_s > 0:
            self._snapshot = self._take_snapshot()
            sim.process(self._refresher(), name="info-refresher")
        #: Delayed catalog mirror (None = live replica queries).
        self.replica_view: Optional[StaleReplicaView] = None
        if policy.catalog_delay_s > 0:
            self.replica_view = StaleReplicaView(
                sim, catalog, policy.catalog_delay_s)
            catalog.add_listener(self.replica_view)
        # Query-timeout fallback state: sites whose next load queries are
        # served from the last-known value, and that value store.
        self._stale_marked: Set[str] = set()
        self._last_known: Dict[str, Tuple[int, float]] = {}
        #: Load queries answered from a last-known (timed-out) value.
        self.stale_load_reads = 0

    # -- staleness machinery ---------------------------------------------------

    def _take_snapshot(self) -> Dict[str, int]:
        return {name: site.load for name, site in self.sites.items()}

    def _refresher(self):
        while True:
            yield self.sim.timeout(self.refresh_interval_s)
            self._snapshot = self._take_snapshot()

    def mark_stale(self, site: str) -> None:
        """Serve this site's load from the last-known value.

        Models an information query that times out: until the cached
        record ages past ``policy.query_timeout_s`` (or :meth:`refresh`
        is called), load queries fall back to the last value observed.
        No-op unless the policy enables the query-timeout fallback.
        """
        if site not in self.sites:
            raise KeyError(f"unknown site {site!r}")
        if self.policy.query_timeout_s > 0:
            self._stale_marked.add(site)

    def refresh(self, site: str) -> None:
        """Drop the stale mark: the next load query reads fresh state."""
        self._stale_marked.discard(site)
        self._last_known.pop(site, None)

    # -- queries ----------------------------------------------------------------

    @property
    def site_names(self) -> List[str]:
        """*Available* site names, sorted (deterministic iteration order).

        The list is cached (the site set never changes after wiring, and
        availability only changes on fault transitions) and shared between
        calls — treat it as read-only.  Down sites are excluded so
        schedulers stop considering them; in fault-free runs this is the
        identical all-sites list.
        """
        return self._available_names

    def is_available(self, site: str) -> bool:
        """Whether the site is currently advertised (not marked down)."""
        return site not in self._unavailable

    def is_suspected(self, site: str) -> bool:
        """Whether the failure detector currently hides this site."""
        return site in self._suspected

    def _recompute_available(self) -> None:
        self._hidden = self._unavailable | self._suspected
        if self._hidden:
            self._available_names = [
                name for name in self._site_names
                if name not in self._hidden]
        else:
            # Restore the shared cached list so fault-free (and fully
            # recovered) grids serve the identical all-sites object.
            self._available_names = self._site_names

    def mark_site_down(self, site: str) -> None:
        """Hide a failed site from scheduler queries (fault injection)."""
        if site not in self.sites:
            raise KeyError(f"unknown site {site!r}")
        self._unavailable.add(site)
        self._recompute_available()

    def mark_site_up(self, site: str) -> None:
        """Re-advertise a recovered site."""
        self._unavailable.discard(site)
        self._recompute_available()

    def mark_site_suspect(self, site: str) -> None:
        """Hide a detector-suspected site (observed health, breaker open)."""
        if site not in self.sites:
            raise KeyError(f"unknown site {site!r}")
        self._suspected.add(site)
        self._recompute_available()

    def clear_site_suspect(self, site: str) -> None:
        """Re-advertise a site whose breaker closed again."""
        self._suspected.discard(site)
        self._recompute_available()

    def load(self, site: str) -> int:
        """The paper's load metric: jobs waiting to run at ``site``."""
        if self._stale_marked and site in self._stale_marked:
            entry = self._last_known.get(site)
            if (entry is not None
                    and self.sim.now - entry[1]
                    <= self.policy.query_timeout_s):
                self.stale_load_reads += 1
                return entry[0]
            # The cached record aged out (or never existed): the fallback
            # is exhausted, so read fresh state below.
            self._stale_marked.discard(site)
        if self._snapshot is not None:
            try:
                value = self._snapshot[site]
            except KeyError:
                raise KeyError(f"unknown site {site!r}") from None
        else:
            try:
                value = self.sites[site].load
            except KeyError:
                raise KeyError(f"unknown site {site!r}") from None
        if self.policy.query_timeout_s > 0:
            self._last_known[site] = (value, self.sim.now)
        return value

    def loads(self) -> Dict[str, int]:
        """Load of every *available* site.

        Down sites are excluded even in snapshot mode: the snapshot may
        predate an outage, but "this site is gone" is control-plane truth
        the schedulers must never un-learn from a stale cache.
        """
        if not self._hidden and not self._stale_marked:
            if self._snapshot is not None:
                return dict(self._snapshot)
            return self._take_snapshot()
        return {name: self.load(name) for name in self._available_names}

    def least_loaded(self, candidates: Optional[Iterable[str]] = None,
                     rng: Optional[random.Random] = None) -> str:
        """The least-loaded *available* site among ``candidates``.

        Ties are broken uniformly at random when ``rng`` is given, else by
        site name — random tie-breaking avoids herd behaviour when many
        sites are idle, which matters early in a run.  Candidates marked
        down are dropped even when the load snapshot still lists them.
        """
        if candidates is not None:
            names = sorted(candidates)
            if self._hidden:
                names = [n for n in names if n not in self._hidden]
        else:
            names = self.site_names
        if not names:
            raise ValueError("no candidate sites")
        best_load: Optional[int] = None
        best: List[str] = []
        for name in names:
            site_load = self.load(name)
            if best_load is None or site_load < best_load:
                best_load = site_load
                best = [name]
            elif site_load == best_load:
                best.append(name)
        if rng is not None and len(best) > 1:
            return rng.choice(best)
        return best[0]

    # -- replica queries ---------------------------------------------------------

    def dataset_locations(self, dataset_name: str) -> List[str]:
        """*Available* sites believed to hold a replica of the dataset."""
        if self.replica_view is not None:
            locations = self.replica_view.locations(dataset_name)
        else:
            locations = self.catalog.locations(dataset_name)
        if self._hidden:
            locations = [s for s in locations
                         if s not in self._hidden]
        return locations

    def sites_with_all(self, dataset_names: Iterable[str]) -> List[str]:
        """Available sites believed to hold *all* given datasets."""
        names = list(dataset_names)
        if not names:
            return self.site_names
        source = (self.replica_view if self.replica_view is not None
                  else self.catalog)
        result = set(source.location_set(names[0]))
        for name in names[1:]:
            if not result:
                break
            result &= source.location_set(name)
        if self._hidden:
            result -= self._hidden
        return sorted(result)

    def has_replica(self, dataset_name: str, site: str) -> bool:
        """Whether the service believes ``site`` holds ``dataset_name``."""
        if self.replica_view is not None:
            return self.replica_view.has_replica(dataset_name, site)
        return self.catalog.has_replica(dataset_name, site)

    def replica_count(self, dataset_name: str) -> int:
        """Believed number of replicas of the dataset."""
        if self.replica_view is not None:
            return self.replica_view.replica_count(dataset_name)
        return self.catalog.replica_count(dataset_name)

    def bytes_present_by_site(self, dataset_names: Iterable[str],
                              sizes=None) -> Dict[str, float]:
        """Believed MB of the named datasets present per site."""
        if self.replica_view is not None:
            return self.replica_view.bytes_present_by_site(
                dataset_names, sizes=sizes)
        return self.catalog.bytes_present_by_site(dataset_names, sizes=sizes)

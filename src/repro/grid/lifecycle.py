"""The explicit job-lifecycle transition engine.

Every job in the grid moves through the states below, and **only** along
the edges declared in :data:`TRANSITIONS`.  The :class:`TransitionEngine`
is the single authority for state changes: it validates each edge,
applies the edge's field effects (timestamps, retry rewinds, failure
reasons), maintains O(1) per-state bookkeeping (counts and id-sets that
replace the old scattered flags), runs transition guards (the watchdog's
jobs-conserved and no-starvation invariants, folded into the hot path),
and emits the corresponding domain-trace record — so trace emission can
never drift from the state machine that produced it.

State diagram (see ``docs/architecture.md`` for the rendered table)::

                         re-place (bounce/deflect/redirect)
                              +----+
                              v    |
    waiting ---submit---> ready ---+--dispatch--> dispatched
       |                   |  \\                       |
       |                   |   +--shed--> SHED      enqueue
     abandon              fail                         v
       |                   |        +--expire---- fetching ---kill---+
       v                   v        v                  |             |
     FAILED <---fail--- retrying    EXPIRED          start           |
                           ^                           v             |
                           |                        running ---------+
                         retry                         |
                       (back to ready)               finish
                                                       v
                                                      DONE

Speculative backup execution (the health layer) adds one more terminal
state: ``fetching``/``running`` --preempt--> ``SPECULATED`` retires the
losing attempt of a speculation race, so exactly one attempt per logical
job ever reaches ``DONE``.

The durability layer (:mod:`repro.grid.durability`) adds one more:
``waiting``/``ready``/``retrying`` --abandon-data-lost-->
``ABANDONED_DATA_LOST`` retires a job whose input dataset lost its last
replica — there is nothing left to fetch, so retrying forever would be
busy-work.

Terminal states (``done``, ``failed``, ``shed``, ``expired``,
``speculated``, ``abandoned_data_lost``) are absorbing: no outgoing
edges, enforced by the table itself.  An edge not in the table raises
:class:`IllegalTransition` with the job id, the attempted edge, and the
simulated time.
"""

from __future__ import annotations

import enum
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.job import Job
    from repro.sim.core import Simulator
    from repro.sim.trace import Tracer


class JobState(enum.Enum):
    """Lifecycle states.

    The first ten members are the canonical state set; the trailing names
    are aliases kept for the pre-engine vocabulary (``CREATED`` /
    ``SUBMITTED`` / ``QUEUED`` / ``COMPLETED``) so existing call sites and
    tests keep working — aliases are identical objects, not copies.
    """

    WAITING = "waiting"        #: generated; parents (if any) not done yet
    READY = "ready"            #: handed to the External Scheduler
    DISPATCHED = "dispatched"  #: ES picked an execution site
    FETCHING = "fetching"      #: at the site: queued, input fetch started
    RUNNING = "running"        #: compute phase in progress
    DONE = "done"              #: completed (terminal)
    RETRYING = "retrying"      #: attempt killed; awaiting supervisor rewind
    FAILED = "failed"          #: given up permanently (terminal)
    SHED = "shed"              #: refused admission (terminal)
    EXPIRED = "expired"        #: queue deadline passed (terminal)
    SPECULATED = "speculated"  #: lost a speculative race (terminal)
    #: Every replica of an input dataset is gone (terminal).
    ABANDONED_DATA_LOST = "abandoned_data_lost"

    # -- legacy aliases (same members, old names) --------------------------
    CREATED = "waiting"
    SUBMITTED = "ready"
    QUEUED = "fetching"
    COMPLETED = "done"


#: Every legal edge, ``(src, dst) -> edge name``.  The engine refuses
#: anything else; terminal states are absorbing because they simply have
#: no outgoing entries.
TRANSITIONS: Dict[Tuple[JobState, JobState], str] = {
    (JobState.WAITING, JobState.READY): "submit",
    # A WAITING job whose parent ended badly is failed without ever
    # reaching the External Scheduler (DAG cascade).
    (JobState.WAITING, JobState.FAILED): "abandon",
    # Placement churn (misdirection bounce, saturation deflection, fault
    # redirect) re-places a job that is still with the ES: a self-edge.
    (JobState.READY, JobState.READY): "re-place",
    (JobState.READY, JobState.DISPATCHED): "dispatch",
    (JobState.READY, JobState.SHED): "shed",
    (JobState.READY, JobState.FAILED): "fail",
    (JobState.DISPATCHED, JobState.FETCHING): "enqueue",
    (JobState.FETCHING, JobState.RUNNING): "start",
    (JobState.FETCHING, JobState.EXPIRED): "expire",
    (JobState.FETCHING, JobState.RETRYING): "kill",
    (JobState.RUNNING, JobState.DONE): "finish",
    (JobState.RUNNING, JobState.RETRYING): "kill",
    # Speculative backup execution: when two attempts of one logical job
    # race, the loser — primary or backup, fetching or mid-compute — is
    # preempted into the absorbing SPECULATED state, so exactly one DONE
    # exists per logical job and conservation counts still balance.
    (JobState.FETCHING, JobState.SPECULATED): "preempt",
    (JobState.RUNNING, JobState.SPECULATED): "preempt",
    (JobState.RETRYING, JobState.READY): "retry",
    (JobState.RETRYING, JobState.FAILED): "fail",
    # An attempt in a speculation pair that can no longer win — dead for
    # good (budget exhausted, unretryable backup) with a live partner,
    # or mid-retry (READY in backoff/parked) when the partner completes
    # — concedes the race instead of failing: the logical job is not
    # failed, the other attempt's outcome is its outcome.
    (JobState.RETRYING, JobState.SPECULATED): "concede",
    (JobState.READY, JobState.SPECULATED): "concede",
    # Unrecoverable data loss: the durability layer marked an input
    # dataset lost (last replica destroyed, no repair possible), so the
    # job is retired instead of retrying against data that no longer
    # exists.  WAITING jobs take the edge through the DAG cascade.
    (JobState.WAITING, JobState.ABANDONED_DATA_LOST): "abandon-data-lost",
    (JobState.READY, JobState.ABANDONED_DATA_LOST): "abandon-data-lost",
    (JobState.RETRYING, JobState.ABANDONED_DATA_LOST): "abandon-data-lost",
}

#: States with no outgoing edges (derived, so it can never go stale).
TERMINAL_STATES: Tuple[JobState, ...] = tuple(
    state for state in JobState
    if not any(src is state for src, _ in TRANSITIONS))

#: Timestamp field stamped on *entering* a state (READY is special-cased:
#: ``submitted_at`` is only stamped on first submission, not on retry).
_ENTRY_TIMESTAMP = {
    JobState.DISPATCHED: "dispatched_at",
    JobState.FETCHING: "queued_at",
    JobState.RUNNING: "started_at",
    JobState.DONE: "completed_at",
}

_FAILURE_STATES = (JobState.FAILED, JobState.SHED, JobState.EXPIRED,
                   JobState.SPECULATED, JobState.ABANDONED_DATA_LOST)

#: Tolerance for float time comparisons in guards (matches the watchdog).
_EPSILON = 1e-6


class IllegalTransition(ValueError):
    """An edge not declared in :data:`TRANSITIONS` was attempted.

    Attributes
    ----------
    job_id:
        The job whose transition was refused.
    src, dst:
        The attempted edge (:class:`JobState` pair).
    time:
        Simulated time of the attempt.
    """

    def __init__(self, job_id: int, src: JobState, dst: JobState,
                 time: float) -> None:
        self.job_id = job_id
        self.src = src
        self.dst = dst
        self.time = time
        super().__init__(
            f"job {job_id}: illegal transition "
            f"{src.value} -> {dst.value} at t={time:.3f}")


class LifecycleGuardError(AssertionError):
    """A transition guard (conservation / starvation) failed mid-edge."""


def apply_transition(job: "Job", dst: JobState, now: float,
                     reason: Optional[str] = None) -> str:
    """Validate one edge on ``job`` and apply its field effects.

    This is the engine-less core used by :meth:`Job.advance` and the
    ``mark_*`` helpers; :class:`TransitionEngine` layers bookkeeping,
    guards, hooks, and trace emission on top.  Returns the edge name.
    """
    src = job.state
    edge = TRANSITIONS.get((src, dst))
    if edge is None:
        raise IllegalTransition(job.job_id, src, dst, now)
    if dst is JobState.READY:
        if src is JobState.RETRYING:
            # Rewind a killed attempt as if the ES had just received the
            # job.  ``submitted_at`` is preserved so response time spans
            # the whole ordeal, including every failed attempt.
            job.retries += 1
            job.deflections = 0
            job.execution_site = None
            job.dispatched_at = None
            job.queued_at = None
            job.data_ready_at = None
            job.processor_at = None
            job.started_at = None
            job.fetched_mb = 0.0
        elif src is JobState.WAITING:
            job.submitted_at = now
        # READY -> READY re-placement carries no field effects.
    elif dst in _FAILURE_STATES:
        job.completed_at = None
        if reason is not None:
            job.failure_reason = reason
    else:
        attr = _ENTRY_TIMESTAMP.get(dst)
        if attr is not None:
            setattr(job, attr, now)
        if dst is JobState.RETRYING and reason is not None:
            job.failure_reason = reason
    job.state = dst
    return edge


#: Called after every applied transition: ``hook(job, src, dst, edge, now)``.
TransitionHook = Callable[["Job", JobState, JobState, str, float], None]


class TransitionEngine:
    """The single authority for job state changes in one grid.

    Keeps O(1) per-state bookkeeping (``counts`` and ``by_state`` id-sets
    over every registered job), applies each edge atomically with its
    field effects, runs the built-in guards, invokes registered hooks, and
    emits the edge's domain-trace record when a tracer is attached.

    Jobs are registered lazily on their first transition (so standalone
    sites and unit tests need no ceremony) or eagerly via :meth:`register`
    (the DAG driver registers WAITING jobs up front so conservation counts
    see them before release).
    """

    def __init__(self, sim: Optional["Simulator"] = None,
                 tracer: Optional["Tracer"] = None) -> None:
        self.sim = sim
        self.tracer = tracer
        self.counts: Dict[JobState, int] = {
            state: 0 for state in JobState}
        self.by_state: Dict[JobState, Set[int]] = {
            state: set() for state in JobState}
        self.jobs: Dict[int, "Job"] = {}
        #: Transitions applied over the engine's lifetime.
        self.transitions_applied = 0
        #: Post-transition observers (``hook(job, src, dst, edge, now)``).
        self.hooks: List[TransitionHook] = []
        #: Optional queue-deadline oracle (seconds; 0/None = no deadline).
        #: When set, the ``start`` edge enforces the no-starvation
        #: invariant: a processor grant can never postdate the deadline.
        self.deadline_of: Optional[Callable[["Job"], float]] = None

    # -- bookkeeping -------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    def register(self, job: "Job") -> None:
        """Track ``job`` in its current state (idempotent per job id).

        A *different* Job object reusing an already-registered id
        supersedes the stale entry (grid runs assign unique ids; reuse
        only happens when unit tests rebuild jobs against one grid).
        """
        jid = job.job_id
        prev = self.jobs.get(jid)
        if prev is job:
            return
        if prev is not None:
            self.counts[prev.state] -= 1
            self.by_state[prev.state].discard(jid)
        self.jobs[jid] = job
        self.counts[job.state] += 1
        self.by_state[job.state].add(jid)

    def jobs_in(self, state: JobState) -> List["Job"]:
        """The registered jobs currently in ``state`` (sorted by id)."""
        return [self.jobs[jid] for jid in sorted(self.by_state[state])]

    # -- the core edge -----------------------------------------------------

    def transition(self, job: "Job", dst: JobState,
                   reason: Optional[str] = None) -> str:
        """Move ``job`` along one declared edge; returns the edge name.

        Raises :class:`IllegalTransition` for an undeclared edge and
        :class:`LifecycleGuardError` when a built-in guard fails.
        """
        src = job.state
        now = self.now
        jid = job.job_id
        if self.jobs.get(jid) is not job:
            self.register(job)
        edge = apply_transition(job, dst, now, reason)
        if src is not dst:
            self.counts[src] -= 1
            self.by_state[src].discard(jid)
            self.counts[dst] += 1
            self.by_state[dst].add(jid)
            if self.counts[src] < 0:
                raise LifecycleGuardError(
                    f"jobs-conserved: count for {src.value!r} went "
                    f"negative on job {jid} ({src.value} -> {dst.value})")
        self.transitions_applied += 1
        if dst is JobState.RUNNING and self.deadline_of is not None:
            self._guard_starvation(job, now)
        if self.hooks:
            for hook in self.hooks:
                hook(job, src, dst, edge, now)
        return edge

    def _guard_starvation(self, job: "Job", now: float) -> None:
        """No-starvation, enforced the instant a job starts computing:
        the processor grant must have landed within the queue deadline."""
        deadline = self.deadline_of(job)
        if (deadline and deadline > 0
                and job.queued_at is not None
                and job.processor_at is not None
                and job.processor_at - job.queued_at > deadline + _EPSILON):
            raise LifecycleGuardError(
                f"no-starvation: job {job.job_id} waited "
                f"{job.processor_at - job.queued_at:.3f} s for a processor "
                f"at {job.execution_site!r}, past its {deadline:g} s "
                f"deadline (t={now:.3f})")

    def audit(self) -> List[str]:
        """Full O(jobs) recount of the incremental bookkeeping.

        Returns a list of problems (empty = consistent); the watchdog
        calls this periodically so a drifted counter is caught mid-run.
        """
        problems: List[str] = []
        recount: Dict[JobState, int] = {state: 0 for state in JobState}
        for jid, job in self.jobs.items():
            recount[job.state] += 1
            if jid not in self.by_state[job.state]:
                problems.append(
                    f"job {jid} is {job.state.value} but missing from "
                    "its state set")
        for state in JobState:
            if recount[state] != self.counts[state]:
                problems.append(
                    f"count for {state.value!r} is {self.counts[state]}, "
                    f"recount says {recount[state]}")
        total = sum(self.counts.values())
        if total != len(self.jobs):
            problems.append(
                f"state counts sum to {total} but {len(self.jobs)} jobs "
                "are registered")
        return problems

    # -- typed edges (each owns its trace emission) ------------------------

    def _emit(self, kind: str, **detail: Any) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.now, kind, **detail)

    def submit(self, job: "Job") -> None:
        """WAITING -> READY: hand the job to the External Scheduler."""
        self.transition(job, JobState.READY)
        if self.tracer is not None:
            detail: Dict[str, Any] = dict(
                job=job.job_id, user=job.user, origin=job.origin_site,
                inputs=list(job.input_files), runtime_s=job.runtime_s)
            if job.depends_on:
                detail["deps"] = list(job.depends_on)
            self.tracer.emit(self.now, "job.submit", **detail)

    def dispatch(self, job: "Job", site: str,
                 attempt: Optional[int] = None) -> None:
        """READY -> DISPATCHED: the ES committed to ``site``."""
        job.execution_site = site
        self.transition(job, JobState.DISPATCHED)
        if self.tracer is not None:
            if attempt is None:
                self.tracer.emit(self.now, "job.dispatch", job=job.job_id,
                                 site=site)
            else:
                self.tracer.emit(self.now, "job.dispatch", job=job.job_id,
                                 site=site, attempt=attempt)

    def enqueue(self, job: "Job", site: str, waiting: int) -> None:
        """DISPATCHED -> FETCHING: arrived at the site, fetch starting."""
        self.transition(job, JobState.FETCHING)
        self._emit("job.queue", job=job.job_id, site=site, waiting=waiting)

    def data_ready(self, job: "Job", site: str, fetched_mb: float) -> None:
        """Record input-data availability (not a state change)."""
        job.data_ready_at = self.now
        job.fetched_mb = fetched_mb
        self._emit("job.data_ready", job=job.job_id, site=site,
                   fetched_mb=fetched_mb)

    def start(self, job: "Job", site: str) -> None:
        """FETCHING -> RUNNING: compute phase begins."""
        self.transition(job, JobState.RUNNING)
        self._emit("job.start", job=job.job_id, site=site,
                   runtime_s=job.runtime_s)

    def finish(self, job: "Job", site: str) -> None:
        """RUNNING -> DONE: the job completed."""
        self.transition(job, JobState.DONE)
        self._emit("job.finish", job=job.job_id, site=site,
                   fetched_mb=job.fetched_mb)

    def expire(self, job: "Job", site: str, deadline_s: float) -> None:
        """FETCHING -> EXPIRED: the queue deadline passed first."""
        waited_s = self.now - (job.queued_at or 0.0)
        self.transition(
            job, JobState.EXPIRED,
            reason=(f"queue deadline ({deadline_s:g} s) exceeded at "
                    f"{site!r}"))
        self._emit("job.expired", job=job.job_id, site=site,
                   deadline_s=deadline_s, waited_s=waited_s)

    def shed(self, job: "Job", reason: str) -> None:
        """READY -> SHED: admission refused (every candidate queue full)."""
        self.transition(job, JobState.SHED, reason=reason)
        self._emit("job.shed", job=job.job_id, deflections=job.deflections)

    def fail(self, job: "Job", reason: str) -> None:
        """READY/RETRYING -> FAILED: give up on the job permanently."""
        self.transition(job, JobState.FAILED, reason=reason)
        self._emit("job.fail", job=job.job_id, reason=job.failure_reason)

    def abandon(self, job: "Job", reason: str) -> None:
        """WAITING -> FAILED: a dependency ended badly (DAG cascade)."""
        self.transition(job, JobState.FAILED, reason=reason)
        self._emit("job.fail", job=job.job_id, reason=job.failure_reason)

    def kill(self, job: "Job", reason: str) -> None:
        """FETCHING/RUNNING -> RETRYING: the attempt was killed.

        Deliberately emits nothing — the supervisor's subsequent retry or
        fail edge is the traced outcome, exactly as before the engine.
        """
        self.transition(job, JobState.RETRYING, reason=reason)

    def preempt(self, job: "Job", site: str, reason: str) -> None:
        """FETCHING/RUNNING -> SPECULATED: lost a speculation race.

        The surviving attempt's ``finish`` carries the logical job's
        completion; the loser is retired here so it is never retried and
        never double-counted as DONE.
        """
        self.transition(job, JobState.SPECULATED, reason=reason)
        self._emit("job.preempted_loser", job=job.job_id, site=site,
                   primary=job.speculative_of or job.job_id,
                   reason=reason)

    def concede(self, job: "Job", reason: str) -> None:
        """RETRYING -> SPECULATED: a dead attempt concedes the race.

        Used when one attempt of a speculation pair is permanently out
        (retry budget gone, or an unretryable backup was killed) while
        its partner is still live or already DONE: the partner carries
        the logical job, so this attempt must not count as a failure.
        """
        self.transition(job, JobState.SPECULATED, reason=reason)
        self._emit("job.preempted_loser", job=job.job_id,
                   site=job.execution_site or "",
                   primary=job.speculative_of or job.job_id,
                   reason=reason)

    def abandon_data_lost(self, job: "Job", dataset: str,
                          reason: str) -> None:
        """WAITING/READY/RETRYING -> ABANDONED_DATA_LOST.

        The durability layer declared ``dataset`` (one of the job's
        inputs) unrecoverably lost; the job is retired through its own
        terminal edge so conservation counts, retries, and failure
        accounting all stay honest.
        """
        self.transition(job, JobState.ABANDONED_DATA_LOST, reason=reason)
        self._emit("job.abandoned_data_lost", job=job.job_id,
                   dataset=dataset, reason=job.failure_reason)

    def retry(self, job: "Job") -> None:
        """RETRYING -> READY: rewind a killed attempt for re-dispatch."""
        self.transition(job, JobState.READY)
        self._emit("job.retry", job=job.job_id, retries=job.retries,
                   reason=job.failure_reason)

    def bounce(self, job: "Job", origin: str, site: str) -> None:
        """READY self-edge: misdirection recovery re-placed the job."""
        job.bounces += 1
        self.transition(job, JobState.READY)
        self._emit("job.bounced", job=job.job_id, origin=origin, site=site)

    def deflect(self, job: "Job", origin: str, site: str) -> None:
        """READY self-edge: saturation backpressure re-placed the job."""
        job.deflections += 1
        self.transition(job, JobState.READY)
        self._emit("job.deflected", job=job.job_id, origin=origin,
                   site=site, deflections=job.deflections)

    def redirect(self, job: "Job", chosen: str, fallback: str) -> None:
        """READY self-edge: the ES's choice was down; a fallback stands in."""
        self.transition(job, JobState.READY)
        self._emit("job.redirect", job=job.job_id, chosen=chosen,
                   fallback=fallback)

    def misdirected(self, job: "Job", site: str,
                    missing: List[str]) -> None:
        """Record a dispatch aimed at phantom replicas (no state change)."""
        self._emit("job.misdirected", job=job.job_id, site=site,
                   missing=missing)

"""A grid site: processors + storage + the job execution engine.

A site executes the jobs the External Scheduler assigns to it.  The flow
for one job (paper §3/§5.2):

1. On arrival the input-data fetch starts immediately ("the data transfer
   needed for a job starts while the job is still in the processor queue").
2. The job waits for a processor in the order the Local Scheduler decides
   (FIFO in the paper).
3. Once it holds a processor it waits (processor *idle*) until its input
   data is local — so completion time = max(queue, transfer) + compute,
   and Figure 4's idle metric includes the waiting-for-data component.
4. It computes for ``runtime_s`` seconds, releases the processor, and
   unpins its input.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.grid.compute import ComputeElement
from repro.grid.datamover import DataMover, DataUnavailableError, RemoteReadMB
from repro.grid.job import Job
from repro.grid.lifecycle import TransitionEngine
from repro.grid.storage import StorageElement
from repro.sim.core import Simulator
from repro.sim.errors import Interrupt
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduling.base import LocalScheduler

#: Interrupt cause used to cancel the losing attempt of a speculation
#: race.  :meth:`Site._unwind` routes this cause to the dedicated
#: ``SPECULATED`` terminal edge instead of the kill/retry path.
_PREEMPT_CAUSE = "speculation loser"


class _Attempt:
    """Cleanup bookkeeping for one fault-mode execution attempt.

    Records exactly which resources the attempt holds at any yield point
    so an :class:`~repro.sim.errors.Interrupt` (site failure) or a
    :class:`~repro.grid.datamover.DataUnavailableError` can be unwound
    without leaking processors, pins, or in-flight fetches.  Null-mode
    executions pass ``attempt=None`` and skip all of this.
    """

    __slots__ = ("fetch", "fetch_name", "pinned", "computing")

    def __init__(self) -> None:
        self.fetch: Optional[Process] = None
        self.fetch_name: Optional[str] = None
        self.pinned: List[str] = []
        self.computing = False


class Site:
    """One site: name, compute element, storage element, local scheduler."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        compute: ComputeElement,
        storage: StorageElement,
        datamover: DataMover,
        local_scheduler: "LocalScheduler",
    ) -> None:
        self.sim = sim
        self.name = name
        self.compute = compute
        self.storage = storage
        self.datamover = datamover
        self.local_scheduler = local_scheduler
        #: Jobs completed at this site (metrics).
        self.jobs_completed: int = 0
        #: Jobs currently assigned here and not finished.
        self.jobs_in_system: int = 0
        #: Observers called with each completed job.
        self.completion_listeners: List[Callable[[Job], None]] = []
        #: Job outputs that could not be stored locally (storage full of
        #: pinned files) and were discarded — a model-pressure indicator.
        self.outputs_dropped: int = 0
        #: Output datasets written here (name → Dataset).
        self.outputs: Dict[str, "Dataset"] = {}
        # Dispatcher state (only used when the LS runs in dispatch mode).
        self._pending: List = []
        self._free_processors = compute.n_processors
        #: Fault injector (None = fault-free; every hot path is gated on
        #: this staying None so a no-fault run is bitwise-identical).
        self.faults = None
        #: Domain-event tracer (None = tracing off; one attribute check).
        self.tracer = None
        #: Alive execution processes, tracked only in fault mode so
        #: :meth:`fail_site` can kill them.  An insertion-ordered dict, not
        #: a set: Process hashes by id, and interrupt order must not depend
        #: on memory layout or a run stops being reproducible.
        self._alive: Dict[Process, None] = {}
        #: job id -> its live execution process, for targeted preemption
        #: (speculation races).  Maintained alongside ``_alive``.
        self._attempts_by_job: Dict[int, Process] = {}
        #: Overload policy + shared saturation counters, installed by the
        #: grid when an :class:`~repro.grid.overload.OverloadPolicy` is
        #: active.  ``None`` keeps execution on the exact pre-overload
        #: code paths (no deadlines, no aging, unpin-by-input-list).
        self.overload = None
        self.overload_stats = None
        #: Observed-health monitor (``None`` = off; installed by the
        #: grid when a :class:`~repro.grid.health.HealthPolicy` is
        #: active).  Its only effect here is that attempts become
        #: trackable/preemptable even without a fault plan.
        self.health = None
        #: High-water mark of the waiting-job count (metrics; tracked
        #: unconditionally — max() never changes behaviour).
        self.peak_queue_depth = 0
        #: The job-lifecycle engine this site drives jobs through.  A
        #: grid-wired site shares its grid's engine (assigned by
        #: :class:`~repro.grid.grid.DataGrid`); a standalone site gets a
        #: private one so unit-level use needs no ceremony.
        self.lifecycle = TransitionEngine(sim)

    def __repr__(self) -> str:
        return (f"<Site {self.name} load={self.load} "
                f"busy={self.compute.busy}/{self.compute.n_processors}>")

    @property
    def load(self) -> int:
        """The paper's load definition: number of jobs waiting to run."""
        if self.local_scheduler.dispatches:
            return len(self._pending)
        return self.compute.waiting

    def enqueue(self, job: Job) -> Process:
        """Accept a dispatched job; returns the execution process.

        The returned process triggers when the job completes (its value is
        the job), so users can wait for their sequential submissions.
        """
        self.jobs_in_system += 1
        self.lifecycle.enqueue(job, self.name, waiting=self.load)
        # Start prefetching every input right away (unpinned, best-effort):
        # "the data transfer needed for a job starts while the job is still
        # in the processor queue".  The authoritative, pinned fetch happens
        # once the job holds a processor, so pinned space is bounded by the
        # processor count and storage can never deadlock on queued jobs.
        prefetches = [
            self.datamover.ensure_local(self.name, fname, pin=False,
                                        best_effort=True)
            for fname in job.input_files
        ]
        if self.local_scheduler.dispatches:
            process = self._enqueue_dispatched(job, prefetches)
            self._note_queue_depth()
            return process
        # Issue the processor request synchronously so the site's load (the
        # paper's "jobs waiting to run") reflects this job immediately —
        # schedulers polling the information service in the same instant
        # must see it.
        priority = self.local_scheduler.priority(job)
        if (priority is not None and self.overload is not None
                and self.overload.aging_factor > 0):
            # Linear starvation aging, folded into a constant key: credit
            # grows uniformly with wait time for everyone, so the pairwise
            # order of two queued jobs is fixed once both are enqueued —
            # equivalent to `base - factor*(now - enqueued_at)` aging, but
            # with zero re-sorting.  Later arrivals pay a growing penalty,
            # so an old large job cannot be overtaken forever.
            priority += int(self.overload.aging_factor * self.sim.now * 1000)
        if priority is None:
            request = self.compute.acquire()
        else:
            request = self.compute.acquire(priority=priority)
        attempt = (_Attempt() if (self.faults is not None
                                  or self.health is not None) else None)
        process = self.sim.process(
            self._execute(job, request, prefetches, attempt),
            name=f"job{job.job_id}@{self.name}")
        if attempt is not None:
            self._track(process, job)
        self._note_queue_depth()
        return process

    def _note_queue_depth(self) -> None:
        depth = self.load
        if depth > self.peak_queue_depth:
            self.peak_queue_depth = depth

    def _deadline_of(self, job: Job) -> float:
        """The job's queue deadline in seconds (0 = none)."""
        if self.overload is None:
            return 0.0
        if job.deadline_s is not None:
            return job.deadline_s
        return self.overload.job_deadline_s

    def _expire(self, job: Job, deadline: float) -> None:
        """Terminal queue-deadline expiry: count, trace, account."""
        self.jobs_in_system -= 1
        self.lifecycle.expire(job, self.name, deadline)
        if self.overload_stats is not None:
            self.overload_stats.jobs_expired += 1

    def _track(self, process: Process, job: Job) -> None:
        self._alive[process] = None
        self._attempts_by_job[job.job_id] = process

        def _done(_ev) -> None:
            self._alive.pop(process, None)
            if self._attempts_by_job.get(job.job_id) is process:
                del self._attempts_by_job[job.job_id]

        process.callbacks.append(_done)

    def preempt_attempt(self, job: Job) -> bool:
        """Cancel the job's live attempt here (speculation race lost).

        The interrupt is delivered at urgent priority, so the loser
        unwinds (releasing its processor, pins, and fetch) before any
        same-time normal event — in particular before a run-stop
        triggered by the winner's completion.  Returns False when no
        live attempt exists (already finished, or never tracked).
        """
        process = self._attempts_by_job.get(job.job_id)
        if process is None or not process.is_alive:
            return False
        process.interrupt(_PREEMPT_CAUSE)
        return True

    def fail_site(self) -> None:
        """Site outage: kill every queued and running job here.

        Dispatch-mode queue entries are dropped (their grants will never
        fire) and every execution process is interrupted; each unwinds its
        own held resources and returns its (incomplete) job so the grid's
        recovery supervisor can re-dispatch it elsewhere.
        """
        self._pending.clear()
        for process in [p for p in self._alive if p.is_alive]:
            process.interrupt("site failure")

    # -- dispatch-mode path (data-aware local schedulers) ----------------------

    def _enqueue_dispatched(self, job: Job, prefetches) -> Process:
        from repro.scheduling.base import QueuedJob
        from repro.sim.events import Event

        ready = self.sim.all_of(prefetches)
        grant = Event(self.sim)
        entry = QueuedJob(job, self.sim.now, ready)
        self._pending.append((entry, grant))
        # A data arrival can unblock a better dispatch choice.
        ready.callbacks.append(lambda _ev: self._try_dispatch())
        attempt = (_Attempt() if (self.faults is not None
                                  or self.health is not None) else None)
        process = self.sim.process(
            self._execute_dispatched(job, grant, ready, attempt, entry),
            name=f"job{job.job_id}@{self.name}")
        if attempt is not None:
            self._track(process, job)
        self._try_dispatch()
        return process

    def _try_dispatch(self) -> None:
        while self._free_processors > 0 and self._pending:
            entries = [entry for entry, _ in self._pending]
            index = self.local_scheduler.pick(entries, self.sim.now)
            if index is None:
                return  # nothing worth running yet; re-asked on events
            if not 0 <= index < len(self._pending):
                raise ValueError(
                    f"{self.local_scheduler!r} picked invalid index "
                    f"{index} of {len(self._pending)} pending jobs")
            entry, grant = self._pending.pop(index)
            if self.tracer is not None:
                self.tracer.emit(
                    self.sim.now, "ls.pick", ls=self.local_scheduler.name,
                    site=self.name, job=entry.job.job_id,
                    pending=len(self._pending) + 1)
            self._free_processors -= 1
            grant.succeed()

    def _execute_dispatched(self, job: Job, grant, ready, attempt=None,
                            entry=None):
        pinned = [] if self.overload is not None else None
        try:
            deadline = self._deadline_of(job)
            if deadline > 0:
                # Race the grant against the queue deadline.  A tie at the
                # same instant goes to execution (the grant has already
                # triggered when we wake).
                expiry = self.sim.timeout(deadline)
                yield self.sim.any_of([grant, expiry])
                if not grant.triggered:
                    # Withdraw from the pending queue by identity so
                    # _try_dispatch can never grant the dead entry.
                    for index, (pending_entry, _g) in enumerate(self._pending):
                        if pending_entry is entry:
                            del self._pending[index]
                            break
                    self._expire(job, deadline)
                    return job
            else:
                yield grant
            job.processor_at = self.sim.now

            prefetched = yield ready
            fetched_mb = sum(prefetched.values())
            fetched_mb += yield from self._fetch_inputs(job, attempt, pinned)
            self.lifecycle.data_ready(job, self.name, fetched_mb)

            self.lifecycle.start(job, self.name)
            for fname in job.input_files:
                # Under overload a remote-read input was never stored,
                # and under durability a quarantine may have removed an
                # input between its fetch and here — nothing to touch
                # or count then.
                if ((self.overload is None
                        and self.datamover.durability is None)
                        or fname in self.storage):
                    self.storage.record_access(fname, self.sim.now)
            if attempt is not None:
                attempt.computing = True
            self.compute.compute_started()
            yield self.sim.timeout(job.runtime_s)
            self.compute.compute_finished()
            if attempt is not None:
                attempt.computing = False
        except (Interrupt, DataUnavailableError) as err:
            if attempt is None:
                raise
            # Return the processor slot iff one was ever granted (the
            # remaining steps after the compute yield are synchronous, so
            # a granted slot cannot have been returned twice).
            if grant.triggered:
                self._free_processors += 1
                self._try_dispatch()
            self._unwind(job, attempt, err)
            return job

        if job.output_size_mb > 0:
            self._store_output(job)

        self._free_processors += 1
        self._try_dispatch()
        for fname in (job.input_files if pinned is None else pinned):
            self.storage.unpin(fname)
        self.lifecycle.finish(job, self.name)
        self.jobs_in_system -= 1
        self.jobs_completed += 1
        for listener in self.completion_listeners:
            listener(job)
        return job

    def _execute(self, job: Job, request, prefetches, attempt=None):
        pinned = [] if self.overload is not None else None
        try:
            # 1. Wait for a processor, in LS-decided order — racing the
            #    queue deadline when one is set.  A tie at the same
            #    instant goes to execution.
            deadline = self._deadline_of(job)
            if deadline > 0:
                expiry = self.sim.timeout(deadline)
                yield self.sim.any_of([request, expiry])
                if not request.triggered:
                    # Releasing an ungranted request cancels it, so the
                    # processor can never be granted to the dead job.
                    self.compute.release(request)
                    self._expire(job, deadline)
                    return job
            else:
                yield request
            job.processor_at = self.sim.now

            # 2. Hold the processor until the input data is local and
            #    pinned.  Usually the prefetch already landed (or is joined
            #    in flight) and this is instantaneous.
            prefetched = yield self.sim.all_of(prefetches)
            fetched_mb = sum(prefetched.values())
            fetched_mb += yield from self._fetch_inputs(job, attempt, pinned)
            self.lifecycle.data_ready(job, self.name, fetched_mb)

            # 3. Compute.
            self.lifecycle.start(job, self.name)
            for fname in job.input_files:
                # Under overload a remote-read input was never stored,
                # and under durability a quarantine may have removed an
                # input between its fetch and here — nothing to touch
                # or count then.
                if ((self.overload is None
                        and self.datamover.durability is None)
                        or fname in self.storage):
                    self.storage.record_access(fname, self.sim.now)
            if attempt is not None:
                attempt.computing = True
            self.compute.compute_started()
            yield self.sim.timeout(job.runtime_s)
            self.compute.compute_finished()
            if attempt is not None:
                attempt.computing = False
        except (Interrupt, DataUnavailableError) as err:
            if attempt is None:
                raise
            # Release covers every request state: granted (returns the
            # slot, grants the next waiter) and still-queued (cancels).
            self.compute.release(request)
            self._unwind(job, attempt, err)
            return job

        # 4. Write the output (stored locally, never transferred — §5.1
        #    ignores output transfer costs; the bytes still occupy the
        #    site's LRU-managed storage when output modelling is on).
        if job.output_size_mb > 0:
            self._store_output(job)

        # 5. Clean up.
        self.compute.release(request)
        for fname in (job.input_files if pinned is None else pinned):
            self.storage.unpin(fname)
        self.lifecycle.finish(job, self.name)
        self.jobs_in_system -= 1
        self.jobs_completed += 1
        for listener in self.completion_listeners:
            listener(job)
        return job

    def _fetch_inputs(self, job: Job, attempt, pinned=None):
        """Pin every input locally; fault mode tracks the in-flight fetch.

        ``pinned`` (overload mode) collects the names actually pinned:
        a fetch degraded to a remote read (:class:`RemoteReadMB`) stored
        and pinned nothing, so completion must not unpin it.
        """
        fetched_mb = 0.0
        for fname in job.input_files:
            if attempt is None:
                moved = yield self.datamover.ensure_local(
                    self.name, fname, pin=True)
                fetched_mb += moved
                if pinned is not None and not isinstance(moved, RemoteReadMB):
                    pinned.append(fname)
                continue
            attempt.fetch = self.datamover.ensure_local(
                self.name, fname, pin=True)
            attempt.fetch_name = fname
            moved = yield attempt.fetch
            fetched_mb += moved
            attempt.fetch = None
            attempt.fetch_name = None
            if not isinstance(moved, RemoteReadMB):
                attempt.pinned.append(fname)
                if pinned is not None:
                    pinned.append(fname)
        return fetched_mb

    def _unwind(self, job: Job, attempt, err) -> None:
        """Undo everything a killed execution attempt still holds."""
        if attempt.computing:
            self.compute.compute_aborted()
            attempt.computing = False
        for fname in attempt.pinned:
            self.storage.unpin(fname)
        attempt.pinned = []
        if attempt.fetch is not None:
            self._settle_orphan_fetch(attempt.fetch, attempt.fetch_name)
            attempt.fetch = None
            attempt.fetch_name = None
        self.jobs_in_system -= 1
        if isinstance(err, Interrupt) and err.cause == _PREEMPT_CAUSE:
            # Speculation loser: absorbing terminal edge, not a retry.
            self.lifecycle.preempt(job, self.name, _PREEMPT_CAUSE)
        else:
            self.lifecycle.kill(job, str(err) or type(err).__name__)

    def _settle_orphan_fetch(self, fetch: Process, fname: str) -> None:
        """Tie off a pinned fetch whose job was killed mid-wait.

        The fetch process keeps running in the background; if it lands it
        will pin the file for a job that no longer exists, so unpin on
        success.  On failure, defuse — nobody waits on it anymore.
        """
        storage = self.storage

        def settle(event) -> None:
            if event.ok:
                # A remote read pinned nothing; there is nothing to undo.
                if not isinstance(event.value, RemoteReadMB):
                    storage.unpin(fname)
            else:
                event.defuse()

        if fetch.processed:
            if fetch.ok and not isinstance(fetch.value, RemoteReadMB):
                storage.unpin(fname)
        else:
            fetch.callbacks.append(settle)

    def _store_output(self, job: Job) -> None:
        """Write the job's output file into local storage (best effort)."""
        from repro.grid.files import Dataset
        from repro.grid.storage import StorageFullError

        output = Dataset(f"output-job{job.job_id}", job.output_size_mb)
        try:
            self.storage.add(output, self.sim.now, pin=False)
        except StorageFullError:
            # A site whose storage is entirely pinned simply loses the
            # output; real grids stage such outputs to tape/elsewhere.
            self.outputs_dropped += 1
            return
        # Outputs are registered as replicas but kept out of the shared
        # (workload-owned, reusable) DatasetCollection; no job ever reads
        # another job's output in this model.
        self.outputs[output.name] = output
        self.datamover.catalog.register(output.name, self.name)

"""A grid site: processors + storage + the job execution engine.

A site executes the jobs the External Scheduler assigns to it.  The flow
for one job (paper §3/§5.2):

1. On arrival the input-data fetch starts immediately ("the data transfer
   needed for a job starts while the job is still in the processor queue").
2. The job waits for a processor in the order the Local Scheduler decides
   (FIFO in the paper).
3. Once it holds a processor it waits (processor *idle*) until its input
   data is local — so completion time = max(queue, transfer) + compute,
   and Figure 4's idle metric includes the waiting-for-data component.
4. It computes for ``runtime_s`` seconds, releases the processor, and
   unpins its input.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.grid.compute import ComputeElement
from repro.grid.datamover import DataMover
from repro.grid.job import Job, JobState
from repro.grid.storage import StorageElement
from repro.sim.core import Simulator
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduling.base import LocalScheduler


class Site:
    """One site: name, compute element, storage element, local scheduler."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        compute: ComputeElement,
        storage: StorageElement,
        datamover: DataMover,
        local_scheduler: "LocalScheduler",
    ) -> None:
        self.sim = sim
        self.name = name
        self.compute = compute
        self.storage = storage
        self.datamover = datamover
        self.local_scheduler = local_scheduler
        #: Jobs completed at this site (metrics).
        self.jobs_completed: int = 0
        #: Jobs currently assigned here and not finished.
        self.jobs_in_system: int = 0
        #: Observers called with each completed job.
        self.completion_listeners: List[Callable[[Job], None]] = []
        #: Job outputs that could not be stored locally (storage full of
        #: pinned files) and were discarded — a model-pressure indicator.
        self.outputs_dropped: int = 0
        #: Output datasets written here (name → Dataset).
        self.outputs: Dict[str, "Dataset"] = {}
        # Dispatcher state (only used when the LS runs in dispatch mode).
        self._pending: List = []
        self._free_processors = compute.n_processors

    def __repr__(self) -> str:
        return (f"<Site {self.name} load={self.load} "
                f"busy={self.compute.busy}/{self.compute.n_processors}>")

    @property
    def load(self) -> int:
        """The paper's load definition: number of jobs waiting to run."""
        if self.local_scheduler.dispatches:
            return len(self._pending)
        return self.compute.waiting

    def enqueue(self, job: Job) -> Process:
        """Accept a dispatched job; returns the execution process.

        The returned process triggers when the job completes (its value is
        the job), so users can wait for their sequential submissions.
        """
        job.advance(JobState.QUEUED, self.sim.now)
        self.jobs_in_system += 1
        # Start prefetching every input right away (unpinned, best-effort):
        # "the data transfer needed for a job starts while the job is still
        # in the processor queue".  The authoritative, pinned fetch happens
        # once the job holds a processor, so pinned space is bounded by the
        # processor count and storage can never deadlock on queued jobs.
        prefetches = [
            self.datamover.ensure_local(self.name, fname, pin=False,
                                        best_effort=True)
            for fname in job.input_files
        ]
        if self.local_scheduler.dispatches:
            return self._enqueue_dispatched(job, prefetches)
        # Issue the processor request synchronously so the site's load (the
        # paper's "jobs waiting to run") reflects this job immediately —
        # schedulers polling the information service in the same instant
        # must see it.
        priority = self.local_scheduler.priority(job)
        if priority is None:
            request = self.compute.acquire()
        else:
            request = self.compute.acquire(priority=priority)
        return self.sim.process(
            self._execute(job, request, prefetches),
            name=f"job{job.job_id}@{self.name}")

    # -- dispatch-mode path (data-aware local schedulers) ----------------------

    def _enqueue_dispatched(self, job: Job, prefetches) -> Process:
        from repro.scheduling.base import QueuedJob
        from repro.sim.events import Event

        ready = self.sim.all_of(prefetches)
        grant = Event(self.sim)
        entry = QueuedJob(job, self.sim.now, ready)
        self._pending.append((entry, grant))
        # A data arrival can unblock a better dispatch choice.
        ready.callbacks.append(lambda _ev: self._try_dispatch())
        process = self.sim.process(
            self._execute_dispatched(job, grant, ready),
            name=f"job{job.job_id}@{self.name}")
        self._try_dispatch()
        return process

    def _try_dispatch(self) -> None:
        while self._free_processors > 0 and self._pending:
            entries = [entry for entry, _ in self._pending]
            index = self.local_scheduler.pick(entries, self.sim.now)
            if index is None:
                return  # nothing worth running yet; re-asked on events
            if not 0 <= index < len(self._pending):
                raise ValueError(
                    f"{self.local_scheduler!r} picked invalid index "
                    f"{index} of {len(self._pending)} pending jobs")
            _, grant = self._pending.pop(index)
            self._free_processors -= 1
            grant.succeed()

    def _execute_dispatched(self, job: Job, grant, ready):
        yield grant
        job.processor_at = self.sim.now

        prefetched = yield ready
        fetched_mb = sum(prefetched.values())
        for fname in job.input_files:
            fetched_mb += yield self.datamover.ensure_local(
                self.name, fname, pin=True)
        job.data_ready_at = self.sim.now
        job.fetched_mb = fetched_mb

        job.advance(JobState.RUNNING, self.sim.now)
        for fname in job.input_files:
            self.storage.record_access(fname, self.sim.now)
        self.compute.compute_started()
        yield self.sim.timeout(job.runtime_s)
        self.compute.compute_finished()

        if job.output_size_mb > 0:
            self._store_output(job)

        self._free_processors += 1
        self._try_dispatch()
        for fname in job.input_files:
            self.storage.unpin(fname)
        job.advance(JobState.COMPLETED, self.sim.now)
        self.jobs_in_system -= 1
        self.jobs_completed += 1
        for listener in self.completion_listeners:
            listener(job)
        return job

    def _execute(self, job: Job, request, prefetches):
        # 1. Wait for a processor, in LS-decided order.
        yield request
        job.processor_at = self.sim.now

        # 2. Hold the processor until the input data is local and pinned.
        #    Usually the prefetch already landed (or is joined in flight)
        #    and this is instantaneous.
        prefetched = yield self.sim.all_of(prefetches)
        fetched_mb = sum(prefetched.values())
        for fname in job.input_files:
            fetched_mb += yield self.datamover.ensure_local(
                self.name, fname, pin=True)
        job.data_ready_at = self.sim.now
        job.fetched_mb = fetched_mb

        # 3. Compute.
        job.advance(JobState.RUNNING, self.sim.now)
        for fname in job.input_files:
            self.storage.record_access(fname, self.sim.now)
        self.compute.compute_started()
        yield self.sim.timeout(job.runtime_s)
        self.compute.compute_finished()

        # 4. Write the output (stored locally, never transferred — §5.1
        #    ignores output transfer costs; the bytes still occupy the
        #    site's LRU-managed storage when output modelling is on).
        if job.output_size_mb > 0:
            self._store_output(job)

        # 5. Clean up.
        self.compute.release(request)
        for fname in job.input_files:
            self.storage.unpin(fname)
        job.advance(JobState.COMPLETED, self.sim.now)
        self.jobs_in_system -= 1
        self.jobs_completed += 1
        for listener in self.completion_listeners:
            listener(job)
        return job

    def _store_output(self, job: Job) -> None:
        """Write the job's output file into local storage (best effort)."""
        from repro.grid.files import Dataset
        from repro.grid.storage import StorageFullError

        output = Dataset(f"output-job{job.job_id}", job.output_size_mb)
        try:
            self.storage.add(output, self.sim.now, pin=False)
        except StorageFullError:
            # A site whose storage is entirely pinned simply loses the
            # output; real grids stage such outputs to tape/elsewhere.
            self.outputs_dropped += 1
            return
        # Outputs are registered as replicas but kept out of the shared
        # (workload-owned, reusable) DatasetCollection; no job ever reads
        # another job's output in this model.
        self.outputs[output.name] = output
        self.datamover.catalog.register(output.name, self.name)

"""Per-run metric extraction from a finished grid."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.grid.grid import DataGrid
from repro.grid.job import Job, JobState


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


@dataclass
class RunMetrics:
    """Every number we extract from one simulation run.

    The three paper metrics are :attr:`avg_response_time_s`,
    :attr:`avg_data_transferred_mb` and :attr:`idle_fraction`; the rest
    support the analysis and extension studies.
    """

    # Scale / bookkeeping
    n_jobs: int
    makespan_s: float
    total_processors: int

    # Paper metric 1: average job completion (response) time.
    avg_response_time_s: float
    # Paper metric 2: average data transferred per job (all traffic).
    avg_data_transferred_mb: float
    # Paper metric 3: average processor idle fraction in [0, 1].
    idle_fraction: float

    # Response-time decomposition (averages over jobs).
    avg_queue_time_s: float
    avg_transfer_wait_s: float
    avg_compute_time_s: float

    # Traffic decomposition (totals, MB).
    fetch_traffic_mb: float
    replication_traffic_mb: float

    # Replication / cache behaviour.
    replications_done: int
    replications_skipped: int
    total_replicas: int
    evictions: int
    #: Job outputs discarded because storage was full (output extension).
    outputs_dropped: int

    # Locality.
    fraction_jobs_at_origin: float
    fraction_jobs_local_data: float

    # Fault injection & recovery (all zero in fault-free runs).
    #: Jobs permanently given up on after exhausting their retry budget.
    jobs_failed: int = 0
    #: Execution attempts killed by faults and re-dispatched.
    jobs_retried: int = 0
    #: Dispatches re-routed because the ES's chosen site was down.
    jobs_redirected: int = 0
    #: Fetch attempts that failed or stalled and were retried.
    transfers_failed: int = 0
    #: Failed fetch retries that switched to an alternate replica source.
    failovers: int = 0
    #: Replica records invalidated by permanent site loss.
    replicas_invalidated: int = 0
    #: Site-down windows that started during the run.
    outages: int = 0
    #: Total site-seconds of unavailability over the horizon.
    site_downtime_s: float = 0.0

    # Stale information (all zero when the catalog view is live).
    #: Jobs dispatched to a site whose promised replica was not there.
    misdirected_jobs: int = 0
    #: Misdirected jobs bounced back to the ES for re-dispatch.
    bounced_jobs: int = 0
    #: Replica queries whose stale answer differed from the live catalog.
    stale_reads: int = 0

    # Overload & degradation (all zero without an overload policy).
    #: Jobs refused admission (queues saturated, deflect budget spent).
    jobs_shed: int = 0
    #: Jobs whose queue wait exceeded the deadline.
    jobs_expired: int = 0
    #: Deflection events (a job may be deflected more than once).
    jobs_deflected: int = 0
    #: Placements decided by the degraded-mode fallback selector.
    degraded_dispatches: int = 0
    #: Pinned fetches degraded to streaming reads (nothing stored).
    remote_reads: int = 0
    #: Replication pushes skipped on a mid-push StorageFullError.
    replications_skipped_full: int = 0
    #: Largest waiting-job count any site ever reached.
    peak_queue_depth: int = 0
    #: Largest used-MB any storage element ever booked.
    peak_storage_used_mb: float = 0.0
    #: Largest reserved-MB any storage element ever promised.
    peak_storage_reserved_mb: float = 0.0

    # Observed health & speculation (all zero without a health policy).
    #: Failure-detector suspicions raised (phi threshold crossings).
    suspicions: int = 0
    #: Suspicions raised against a site that was actually reachable.
    false_suspicions: int = 0
    #: Mean silence-to-suspicion lag for genuine failures (seconds).
    mean_detection_latency_s: float = 0.0
    #: Circuit breakers opened (site + link).
    breaker_trips: int = 0
    #: Circuit breakers closed again.
    breaker_restores: int = 0
    #: Half-open probes attempted.
    health_probes: int = 0
    #: Speculative backup attempts dispatched for stragglers.
    speculative_launched: int = 0
    #: Attempts retired as speculation-race losers.
    speculative_losers: int = 0
    #: Attempt-seconds thrown away by preempted losers.
    speculative_wasted_s: float = 0.0

    # Data durability (all zero without the durability layer).
    #: Silent corruptions injected into stored replicas.
    replicas_corrupted: int = 0
    #: Corrupt copies detected and removed (access/transfer/scrub).
    replicas_quarantined: int = 0
    #: Replicas re-created by the RepairManager.
    replicas_repaired: int = 0
    #: Datasets whose last replica was lost (final).
    datasets_lost: int = 0
    #: Jobs retired through the terminal abandon-data-lost edge.
    jobs_abandoned_data_lost: int = 0
    #: MB moved by completed repair transfers.
    repair_bytes_mb: float = 0.0
    #: Mean detection-to-repaired lag over repaired replicas (seconds).
    mean_repair_latency_s: float = 0.0
    #: Background scrubber sweeps completed.
    scrub_passes: int = 0

    # Per-site detail (site name → value), for load-balance analysis.
    jobs_per_site: Dict[str, int] = field(default_factory=dict)
    idle_per_site: Dict[str, float] = field(default_factory=dict)
    downtime_per_site: Dict[str, float] = field(default_factory=dict)

    @property
    def false_positive_rate(self) -> float:
        """Fraction of detector suspicions that were wrong."""
        return (self.false_suspicions / self.suspicions
                if self.suspicions else 0.0)

    @property
    def goodput(self) -> float:
        """Useful compute-seconds per processor-second of the horizon.

        Wasted speculative work is excluded: only the winning attempt of
        each logical job counts.
        """
        if self.makespan_s <= 0 or self.total_processors == 0:
            return 0.0
        useful = self.avg_compute_time_s * self.n_jobs
        return useful / (self.total_processors * self.makespan_s)

    @property
    def idle_percent(self) -> float:
        """Idle fraction as a percentage (Figure 4's axis)."""
        return 100.0 * self.idle_fraction

    @property
    def completion_rate(self) -> float:
        """Fraction of finished jobs that completed (1.0 when none failed)."""
        total = self.n_jobs + self.jobs_failed
        return self.n_jobs / total if total else 0.0

    @property
    def total_traffic_mb(self) -> float:
        """All bytes that crossed the network."""
        return (self.fetch_traffic_mb + self.replication_traffic_mb
                + self.repair_bytes_mb)

    @property
    def load_imbalance(self) -> float:
        """max/mean ratio of per-site job counts (1.0 = perfectly even).

        Quantifies the hotspot effect the paper describes for
        JobDataPresent without replication.
        """
        counts = list(self.jobs_per_site.values())
        mean = _mean([float(c) for c in counts])
        if mean == 0:
            return 1.0
        return max(counts) / mean

    @classmethod
    def from_grid(cls, grid: DataGrid,
                  makespan_s: Optional[float] = None) -> "RunMetrics":
        """Extract metrics after :meth:`DataGrid.run` returned.

        ``makespan_s`` defaults to the grid's current simulated time (the
        moment the last job finished); idle time is integrated over
        ``[0, makespan]``.
        """
        horizon = grid.sim.now if makespan_s is None else makespan_s
        jobs = grid.completed_jobs
        if not jobs:
            raise ValueError("no completed jobs; did the grid run?")
        failed = grid.failed_jobs
        shed = grid.shed_jobs
        expired = grid.expired_jobs
        speculated = grid.speculated_jobs
        abandoned = grid.abandoned_jobs
        # A job may legitimately end FAILED under fault injection,
        # SHED/EXPIRED under an overload policy, SPECULATED as a
        # speculation-race loser, or ABANDONED_DATA_LOST when an input
        # dataset lost its last replica; only *unaccounted* jobs (none of
        # those and not completed) mean the run stopped mid-flight and
        # the averages would be biased.
        incomplete = (len(grid.submitted_jobs) - len(jobs) - len(failed)
                      - len(shed) - len(expired) - len(speculated)
                      - len(abandoned))
        if incomplete:
            raise ValueError(
                f"{incomplete} submitted jobs never completed; "
                "metrics would be biased")

        by_purpose = grid.transfers.mb_moved_by_purpose()
        fetch_mb = by_purpose.get("job-fetch", 0.0)
        replication_mb = by_purpose.get("replication", 0.0)
        total_mb = sum(by_purpose.values())

        n_proc = grid.total_processors
        busy = sum(
            site.compute.busy_processor_seconds(horizon)
            for site in grid.sites.values()
        )
        idle_fraction = (
            1.0 - busy / (n_proc * horizon) if horizon > 0 else 0.0)

        jobs_per_site = {name: 0 for name in grid.sites}
        for job in jobs:
            jobs_per_site[job.execution_site] += 1

        faults = grid.faults
        downtime = (faults.downtime_per_site(horizon)
                    if faults is not None else {})
        view = grid.info.replica_view

        return cls(
            n_jobs=len(jobs),
            makespan_s=horizon,
            total_processors=n_proc,
            avg_response_time_s=_mean([j.response_time for j in jobs]),
            avg_data_transferred_mb=total_mb / len(jobs),
            idle_fraction=idle_fraction,
            avg_queue_time_s=_mean([j.queue_time for j in jobs]),
            avg_transfer_wait_s=_mean([j.transfer_time for j in jobs]),
            avg_compute_time_s=_mean([j.compute_time for j in jobs]),
            fetch_traffic_mb=fetch_mb,
            replication_traffic_mb=replication_mb,
            replications_done=grid.datamover.replications_done,
            replications_skipped=grid.datamover.replications_skipped,
            total_replicas=grid.catalog.total_replicas(),
            evictions=sum(s.evictions for s in grid.storages.values()),
            outputs_dropped=sum(
                s.outputs_dropped for s in grid.sites.values()),
            fraction_jobs_at_origin=_mean(
                [1.0 if j.ran_at_origin else 0.0 for j in jobs]),
            fraction_jobs_local_data=_mean(
                [1.0 if j.transfer_time <= 1e-9 else 0.0 for j in jobs]),
            jobs_failed=len(failed),
            jobs_retried=faults.jobs_retried if faults else 0,
            jobs_redirected=faults.jobs_redirected if faults else 0,
            transfers_failed=grid.datamover.transfers_failed,
            failovers=grid.datamover.failovers,
            replicas_invalidated=(
                faults.replicas_invalidated if faults else 0),
            outages=faults.outages_started if faults else 0,
            site_downtime_s=sum(downtime.values()),
            misdirected_jobs=view.misdirected_jobs if view else 0,
            bounced_jobs=view.bounced_jobs if view else 0,
            stale_reads=view.stale_reads if view else 0,
            jobs_shed=len(shed),
            jobs_expired=len(expired),
            jobs_deflected=(grid.overload_stats.jobs_deflected
                            if grid.overload_stats else 0),
            degraded_dispatches=(grid.overload_stats.degraded_dispatches
                                 if grid.overload_stats else 0),
            remote_reads=(grid.overload_stats.remote_reads
                          if grid.overload_stats else 0),
            replications_skipped_full=(
                grid.datamover.replications_skipped_full),
            peak_queue_depth=max(
                s.peak_queue_depth for s in grid.sites.values()),
            peak_storage_used_mb=max(
                s.peak_used_mb for s in grid.storages.values()),
            peak_storage_reserved_mb=max(
                s.peak_reserved_mb for s in grid.storages.values()),
            suspicions=(grid.health.stats.suspicions if grid.health else 0),
            false_suspicions=(
                grid.health.stats.false_suspicions if grid.health else 0),
            mean_detection_latency_s=(
                grid.health.stats.mean_detection_latency_s
                if grid.health else 0.0),
            breaker_trips=(
                grid.health.stats.breaker_trips if grid.health else 0),
            breaker_restores=(
                grid.health.stats.breaker_restores if grid.health else 0),
            health_probes=(grid.health.stats.probes if grid.health else 0),
            speculative_launched=(
                grid.health.stats.speculative_launched if grid.health else 0),
            speculative_losers=(
                grid.health.stats.speculative_losers if grid.health else 0),
            speculative_wasted_s=(
                grid.health.stats.speculative_wasted_s if grid.health
                else 0.0),
            replicas_corrupted=(
                grid.durability.stats.replicas_corrupted
                if grid.durability else 0),
            replicas_quarantined=(
                grid.durability.stats.replicas_quarantined
                if grid.durability else 0),
            replicas_repaired=(
                grid.durability.stats.replicas_repaired
                if grid.durability else 0),
            datasets_lost=(
                grid.durability.stats.datasets_lost
                if grid.durability else 0),
            jobs_abandoned_data_lost=len(abandoned),
            # From the transfer ledger, not the manager's own counter, so
            # it cross-validates exactly against transfer.done records.
            repair_bytes_mb=by_purpose.get("repair", 0.0),
            mean_repair_latency_s=(
                grid.durability.stats.mean_repair_latency_s
                if grid.durability else 0.0),
            scrub_passes=(
                grid.durability.stats.scrub_passes
                if grid.durability else 0),
            jobs_per_site=jobs_per_site,
            idle_per_site={
                name: site.compute.idle_fraction(horizon)
                for name, site in grid.sites.items()
            },
            downtime_per_site=downtime,
        )

"""Cross-seed aggregation.

The paper replicates each algorithm pair under three random seeds and
reports the average ("we ran with different random seeds in order to
evaluate variance; in practice, we found no significance variation").
:func:`summarize` reproduces that averaging and additionally reports the
spread, so our EXPERIMENTS.md can substantiate the low-variance claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.metrics.collector import RunMetrics


@dataclass(frozen=True)
class MetricSummary:
    """Mean and dispersion of one scalar metric across replications."""

    mean: float
    std: float
    minimum: float
    maximum: float
    n: int

    @property
    def relative_spread(self) -> float:
        """(max - min) / mean — the paper's informal variance check."""
        if self.mean == 0:
            return 0.0
        return (self.maximum - self.minimum) / abs(self.mean)

    @classmethod
    def of(cls, values: Sequence[float]) -> "MetricSummary":
        """Summarize a non-empty sequence."""
        if not values:
            raise ValueError("cannot summarize zero replications")
        n = len(values)
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / n if n > 1 else 0.0
        return cls(mean=mean, std=math.sqrt(var),
                   minimum=min(values), maximum=max(values), n=n)


#: The scalar RunMetrics fields worth aggregating.
SUMMARY_FIELDS = (
    "avg_response_time_s",
    "avg_data_transferred_mb",
    "idle_fraction",
    "avg_queue_time_s",
    "avg_transfer_wait_s",
    "avg_compute_time_s",
    "fetch_traffic_mb",
    "replication_traffic_mb",
    "makespan_s",
    "fraction_jobs_at_origin",
    "fraction_jobs_local_data",
)


def summarize(runs: Sequence[RunMetrics]) -> Dict[str, MetricSummary]:
    """Aggregate replicated runs field-by-field."""
    if not runs:
        raise ValueError("no runs to summarize")
    out: Dict[str, MetricSummary] = {}
    for field_name in SUMMARY_FIELDS:
        out[field_name] = MetricSummary.of(
            [float(getattr(run, field_name)) for run in runs])
    # Integer-ish counters, averaged too.
    for field_name in ("replications_done", "evictions", "total_replicas"):
        out[field_name] = MetricSummary.of(
            [float(getattr(run, field_name)) for run in runs])
    return out

"""Time-series sampling of grid state.

The scalar metrics in :mod:`~repro.metrics.collector` summarize a whole
run; a :class:`GridMonitor` additionally samples the grid at a fixed
period so transients are visible — how long the hotspot queue takes to
drain once replication kicks in, how storage fills, how network load
evolves.  Attach one before ``grid.run()``::

    monitor = GridMonitor(grid, period_s=500.0)
    grid.run()
    series = monitor.series("queued_jobs")

Sampling is O(sites) per tick and adds one kernel event per period.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.grid import DataGrid

#: Quantities a GridMonitor samples each tick.
SAMPLED_FIELDS = (
    "queued_jobs",        # jobs waiting for processors, grid-wide
    "running_jobs",       # compute phases in progress
    "jobs_in_system",     # dispatched but not completed
    "active_transfers",   # wire transfers in flight
    "storage_used_mb",    # total bytes stored
    "total_replicas",     # replica-catalog entries
    "completed_jobs",     # cumulative completions
)


@dataclass
class Sample:
    """One sampling instant."""

    time: float
    values: Dict[str, float] = field(default_factory=dict)
    #: Per-site queue lengths at this instant (optional detail).
    site_queues: Dict[str, int] = field(default_factory=dict)


class GridMonitor:
    """Periodically samples a grid; attach before running.

    Parameters
    ----------
    grid:
        The grid to watch.
    period_s:
        Sampling period in simulated seconds.
    track_site_queues:
        Also record per-site queue lengths each tick (costs memory on
        long runs; off by default).
    """

    def __init__(self, grid: "DataGrid", period_s: float = 500.0,
                 track_site_queues: bool = False) -> None:
        if period_s <= 0:
            raise ValueError(f"period must be positive, got {period_s!r}")
        self.grid = grid
        self.period_s = period_s
        self.track_site_queues = track_site_queues
        self.samples: List[Sample] = [self._sample()]  # t = 0 baseline
        grid.sim.process(self._loop(), name="grid-monitor")

    def _loop(self):
        while True:
            yield self.grid.sim.timeout(self.period_s)
            self.samples.append(self._sample())

    def _sample(self) -> Sample:
        grid = self.grid
        sites = grid.sites.values()
        values = {
            "queued_jobs": float(sum(s.load for s in sites)),
            "running_jobs": float(sum(s.compute.busy for s in sites)),
            "jobs_in_system": float(sum(s.jobs_in_system for s in sites)),
            "active_transfers": float(len(grid.transfers.active)),
            "storage_used_mb": sum(
                st.used_mb for st in grid.storages.values()),
            "total_replicas": float(grid.catalog.total_replicas()),
            "completed_jobs": float(len(grid.completed_jobs)),
        }
        sample = Sample(time=grid.sim.now, values=values)
        if self.track_site_queues:
            sample.site_queues = {s.name: s.load for s in sites}
        return sample

    # -- access ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def times(self) -> List[float]:
        """Sampling instants."""
        return [s.time for s in self.samples]

    def series(self, name: str) -> List[float]:
        """The sampled values of one quantity, in time order."""
        if name not in SAMPLED_FIELDS:
            raise KeyError(
                f"unknown series {name!r}; available: {SAMPLED_FIELDS}")
        return [s.values[name] for s in self.samples]

    def peak(self, name: str) -> Tuple[float, float]:
        """(time, value) of the maximum of a series."""
        series = self.series(name)
        index = max(range(len(series)), key=series.__getitem__)
        return (self.samples[index].time, series[index])

    def time_of_completion_fraction(self, fraction: float) -> Optional[float]:
        """First sample time when ≥ ``fraction`` of all submitted jobs had
        completed (None if never reached during sampling)."""
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction!r}")
        total = len(self.grid.submitted_jobs)
        if total == 0:
            return None
        for sample in self.samples:
            if sample.values["completed_jobs"] >= fraction * total:
                return sample.time
        return None

    def site_queue_series(self, site: str) -> List[int]:
        """Per-site queue lengths (requires ``track_site_queues``)."""
        if not self.track_site_queues:
            raise ValueError("monitor was built with track_site_queues=False")
        return [s.site_queues[site] for s in self.samples]

    def render(self, name: str, width: int = 60, height: int = 12) -> str:
        """A crude ASCII sparkline plot of one series."""
        series = self.series(name)
        if not series:
            return "(no samples)"
        peak = max(series) or 1.0
        # Downsample to `width` columns.
        columns = []
        n = len(series)
        for c in range(min(width, n)):
            lo = c * n // min(width, n)
            hi = max(lo + 1, (c + 1) * n // min(width, n))
            columns.append(max(series[lo:hi]))
        lines = []
        for row in range(height, 0, -1):
            threshold = peak * row / height
            lines.append("".join(
                "#" if v >= threshold else " " for v in columns))
        lines.append("-" * len(columns))
        lines.append(f"{name}: peak {peak:g} over "
                     f"[0, {self.samples[-1].time:g}] s")
        return "\n".join(lines)

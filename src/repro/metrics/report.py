"""ASCII rendering of results in the shapes the paper's figures use.

Figures 3a/3b/4 are grouped bar charts: one group per External Scheduler,
one bar per Dataset Scheduler.  :func:`format_matrix` prints the same data
as an ES-rows × DS-columns table.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Sequence, Tuple

from repro.metrics.collector import RunMetrics

#: (es_name, ds_name) → value, the shape run_matrix produces.
MatrixValues = Mapping[Tuple[str, str], float]


def format_matrix(
    title: str,
    values: MatrixValues,
    es_order: Sequence[str],
    ds_order: Sequence[str],
    unit: str = "",
    precision: int = 1,
) -> str:
    """Render an ES × DS value table (one paper figure)."""
    col_width = max(14, *(len(ds) + 2 for ds in ds_order))
    row_label_width = max(len(es) for es in es_order) + 2
    lines = [title, "=" * len(title)]
    header = " " * row_label_width + "".join(
        f"{ds:>{col_width}}" for ds in ds_order)
    lines.append(header)
    for es in es_order:
        cells = []
        for ds in ds_order:
            try:
                val = values[(es, ds)]
            except KeyError:
                cells.append(f"{'--':>{col_width}}")
                continue
            cells.append(f"{val:>{col_width}.{precision}f}")
        lines.append(f"{es:<{row_label_width}}" + "".join(cells))
    if unit:
        lines.append(f"(values in {unit})")
    return "\n".join(lines)


def format_run(metrics: RunMetrics, label: str = "run") -> str:
    """Human-readable one-run report."""
    lines = [
        f"--- {label} ---",
        f"jobs completed:            {metrics.n_jobs}",
        f"makespan:                  {metrics.makespan_s:,.0f} s",
        f"avg response time:         {metrics.avg_response_time_s:,.1f} s",
        f"  avg queue time:          {metrics.avg_queue_time_s:,.1f} s",
        f"  avg transfer wait:       {metrics.avg_transfer_wait_s:,.1f} s",
        f"  avg compute time:        {metrics.avg_compute_time_s:,.1f} s",
        f"avg data transferred/job:  {metrics.avg_data_transferred_mb:,.1f} MB",
        f"  job-fetch traffic:       {metrics.fetch_traffic_mb:,.0f} MB",
        f"  replication traffic:     {metrics.replication_traffic_mb:,.0f} MB",
        f"processor idle time:       {metrics.idle_percent:.1f} %",
        f"replications done/skipped: {metrics.replications_done}"
        f"/{metrics.replications_skipped}",
        f"replicas in catalog:       {metrics.total_replicas}",
        f"cache evictions:           {metrics.evictions}",
        f"jobs run at origin site:   {100 * metrics.fraction_jobs_at_origin:.1f} %",
        f"jobs with local data:      {100 * metrics.fraction_jobs_local_data:.1f} %",
        f"load imbalance (max/mean): {metrics.load_imbalance:.2f}",
    ]
    if (metrics.outages or metrics.jobs_failed or metrics.jobs_retried
            or metrics.transfers_failed or metrics.site_downtime_s):
        lines += [
            "faults & recovery:",
            f"  site outages:            {metrics.outages}",
            f"  site downtime:           {metrics.site_downtime_s:,.0f} site-s",
            f"  jobs retried/redirected: {metrics.jobs_retried}"
            f"/{metrics.jobs_redirected}",
            f"  jobs failed for good:    {metrics.jobs_failed} "
            f"(completion rate {100 * metrics.completion_rate:.1f} %)",
            f"  transfers failed:        {metrics.transfers_failed}",
            f"  replica failovers:       {metrics.failovers}",
            f"  replicas invalidated:    {metrics.replicas_invalidated}",
        ]
    if metrics.misdirected_jobs or metrics.bounced_jobs or metrics.stale_reads:
        lines += [
            "stale information:",
            f"  stale replica reads:     {metrics.stale_reads}",
            f"  jobs misdirected:        {metrics.misdirected_jobs}",
            f"  jobs bounced to the ES:  {metrics.bounced_jobs}",
        ]
    if (metrics.jobs_shed or metrics.jobs_expired or metrics.jobs_deflected
            or metrics.degraded_dispatches or metrics.remote_reads
            or metrics.replications_skipped_full):
        lines += [
            "overload & degradation:",
            f"  jobs shed/expired:       {metrics.jobs_shed}"
            f"/{metrics.jobs_expired}",
            f"  jobs deflected:          {metrics.jobs_deflected}",
            f"  degraded dispatches:     {metrics.degraded_dispatches}",
            f"  remote reads:            {metrics.remote_reads}",
            f"  replications skipped (full): "
            f"{metrics.replications_skipped_full}",
            f"  peak queue depth:        {metrics.peak_queue_depth}",
            f"  peak storage used:       {metrics.peak_storage_used_mb:,.0f}"
            " MB",
            f"  peak storage reserved:   "
            f"{metrics.peak_storage_reserved_mb:,.0f} MB",
        ]
    if (metrics.replicas_corrupted or metrics.replicas_repaired
            or metrics.datasets_lost or metrics.jobs_abandoned_data_lost
            or metrics.repair_bytes_mb):
        lines += [
            "data durability:",
            f"  replicas corrupted:      {metrics.replicas_corrupted}",
            f"  replicas repaired:       {metrics.replicas_repaired}",
            f"  datasets lost for good:  {metrics.datasets_lost}",
            f"  jobs abandoned (lost):   {metrics.jobs_abandoned_data_lost}",
            f"  repair traffic:          {metrics.repair_bytes_mb:,.0f} MB",
            f"  mean repair latency:     "
            f"{metrics.mean_repair_latency_s:,.1f} s",
        ]
    if (metrics.suspicions or metrics.breaker_trips
            or metrics.health_probes or metrics.speculative_launched):
        lines += [
            "failure detection:",
            f"  suspicions (false):      {metrics.suspicions}"
            f" ({metrics.false_suspicions})",
            f"  mean detection latency:  "
            f"{metrics.mean_detection_latency_s:,.1f} s",
            f"  breaker trips/restores:  {metrics.breaker_trips}"
            f"/{metrics.breaker_restores}",
            f"  half-open probes:        {metrics.health_probes}",
            f"  speculative launched/lost: {metrics.speculative_launched}"
            f"/{metrics.speculative_losers}",
            f"  speculative wasted time: "
            f"{metrics.speculative_wasted_s:,.0f} s",
        ]
    return "\n".join(lines)


def format_comparison(
    rows: Mapping[str, RunMetrics],
    metric: Callable[[RunMetrics], float] = lambda m: m.avg_response_time_s,
    metric_name: str = "avg response time (s)",
) -> str:
    """Tabulate one metric across labelled runs (e.g. Figure 5's bars)."""
    label_width = max(len(label) for label in rows) + 2
    lines = [f"{'configuration':<{label_width}}{metric_name:>24}"]
    for label, metrics in rows.items():
        lines.append(f"{label:<{label_width}}{metric(metrics):>24,.1f}")
    return "\n".join(lines)

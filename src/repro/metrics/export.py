"""CSV export of results for external plotting/analysis tools.

Three shapes cover everything the harness produces:

* :func:`matrix_to_csv` — one row per (ES, DS, seed) of a
  :class:`~repro.experiments.runner.MatrixResult` (the Figure 3/4 data).
* :func:`sweep_to_csv` — one row per (value, seed) of a
  :class:`~repro.experiments.sweep.SweepResult` (the Figure 5 shape).
* :func:`timeseries_to_csv` — one row per sample of a
  :class:`~repro.metrics.timeseries.GridMonitor`.

Columns are the scalar :class:`~repro.metrics.collector.RunMetrics`
fields, stable and documented, so downstream notebooks don't chase our
internals.
"""

from __future__ import annotations

import csv
import dataclasses
from pathlib import Path
from typing import TYPE_CHECKING, List, Union

from repro.metrics.collector import RunMetrics

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.runner import MatrixResult
    from repro.experiments.sweep import SweepResult
    from repro.metrics.timeseries import GridMonitor

PathLike = Union[str, Path]

#: Scalar RunMetrics columns exported, in order.
METRIC_COLUMNS: List[str] = [
    f.name for f in dataclasses.fields(RunMetrics)
    if f.type in ("int", "float")
]


def _metric_row(metrics: RunMetrics) -> List[float]:
    return [getattr(metrics, name) for name in METRIC_COLUMNS]


def matrix_to_csv(result: "MatrixResult", path: PathLike) -> int:
    """Write a matrix sweep as CSV; returns the number of data rows."""
    rows = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["es", "ds", "seed"] + METRIC_COLUMNS)
        for (es, ds), runs in sorted(result.runs.items()):
            for seed, metrics in zip(result.seeds, runs):
                writer.writerow([es, ds, seed] + _metric_row(metrics))
                rows += 1
    return rows


def sweep_to_csv(result: "SweepResult", path: PathLike) -> int:
    """Write a parameter sweep as CSV; returns the number of data rows."""
    rows = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [result.parameter, "es", "ds", "seed"] + METRIC_COLUMNS)
        for value in result.values:
            for seed, metrics in zip(result.seeds, result.runs[value]):
                writer.writerow(
                    [value, result.es_name, result.ds_name, seed]
                    + _metric_row(metrics))
                rows += 1
    return rows


def timeseries_to_csv(monitor: "GridMonitor", path: PathLike) -> int:
    """Write a GridMonitor's samples as CSV; returns the row count."""
    from repro.metrics.timeseries import SAMPLED_FIELDS

    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time"] + list(SAMPLED_FIELDS))
        for sample in monitor.samples:
            writer.writerow(
                [sample.time]
                + [sample.values[name] for name in SAMPLED_FIELDS])
    return len(monitor.samples)

"""Statistical validation helpers.

The paper's statistics are informal ("we found no significance
variation"; "no significant performance differences between the two
replication algorithms").  These helpers make those statements testable:

* :func:`chi_square_popularity` — goodness-of-fit of an observed request
  histogram against a popularity model (validates Figure 2's generator).
* :func:`confidence_interval` — Student-t interval over seed replications.
* :func:`welch_t_test` — two-sample comparison of an algorithm pair's
  metric across seeds (formalizes the paper's C5-style equivalences).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from scipy import stats as scipy_stats

from repro.workload.popularity import PopularityModel


@dataclass(frozen=True)
class GoodnessOfFit:
    """Result of a chi-square goodness-of-fit test."""

    statistic: float
    p_value: float
    dof: int
    bins: int

    @property
    def rejected_at_5pct(self) -> bool:
        """Whether the null (samples follow the model) is rejected."""
        return self.p_value < 0.05


def chi_square_popularity(
    observed: Sequence[int],
    model: PopularityModel,
    min_expected: float = 5.0,
) -> GoodnessOfFit:
    """Chi-square test of observed per-rank request counts vs. a model.

    ``observed[k]`` is the number of requests for rank ``k`` (the model's
    ordering, not the empirical one).  Tail ranks whose expected counts
    fall below ``min_expected`` are pooled into one bin, the standard
    validity fix for sparse chi-square cells.
    """
    if len(observed) != model.n_items:
        raise ValueError(
            f"observed has {len(observed)} ranks, model has "
            f"{model.n_items}")
    total = sum(observed)
    if total == 0:
        raise ValueError("no observations")
    expected = model.expected_counts(total)

    obs_bins: List[float] = []
    exp_bins: List[float] = []
    pooled_obs = 0.0
    pooled_exp = 0.0
    for obs, exp in zip(observed, expected):
        if exp >= min_expected:
            obs_bins.append(float(obs))
            exp_bins.append(exp)
        else:
            pooled_obs += obs
            pooled_exp += exp
    if pooled_exp > 0:
        obs_bins.append(pooled_obs)
        exp_bins.append(pooled_exp)
    if len(obs_bins) < 2:
        raise ValueError(
            "model too flat/small for a chi-square test after pooling")

    # Normalize float drift: chisquare requires equal totals.
    scale = sum(obs_bins) / sum(exp_bins)
    exp_bins = [e * scale for e in exp_bins]
    statistic, p_value = scipy_stats.chisquare(obs_bins, exp_bins)
    return GoodnessOfFit(
        statistic=float(statistic),
        p_value=float(p_value),
        dof=len(obs_bins) - 1,
        bins=len(obs_bins),
    )


def confidence_interval(
    values: Sequence[float],
    level: float = 0.95,
) -> Tuple[float, float]:
    """Student-t confidence interval for the mean of seed replications."""
    if not 0 < level < 1:
        raise ValueError(f"level must be in (0, 1), got {level!r}")
    n = len(values)
    if n < 2:
        raise ValueError("need at least two replications for an interval")
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = scipy_stats.t.ppf((1 + level) / 2, n - 1) * math.sqrt(var / n)
    return (mean - half, mean + half)


@dataclass(frozen=True)
class TTestResult:
    """Result of a Welch two-sample t-test."""

    statistic: float
    p_value: float

    @property
    def significant_at_5pct(self) -> bool:
        """Whether the two samples' means differ significantly."""
        return self.p_value < 0.05


def welch_t_test(a: Sequence[float], b: Sequence[float]) -> TTestResult:
    """Welch's t-test (unequal variances) between two metric samples.

    Used to formalize the paper's equivalence statements, e.g. comparing
    JobDataPresent+DataRandom vs. +DataLeastLoaded response times across
    seeds.  With identical samples (zero variance both sides) the
    difference is exactly zero and we report p = 1.
    """
    if len(a) < 2 or len(b) < 2:
        raise ValueError("need at least two observations per sample")
    if max(a) == min(a) and max(b) == min(b):
        same = math.isclose(a[0], b[0], rel_tol=1e-12, abs_tol=1e-12)
        return TTestResult(statistic=0.0 if same else math.inf,
                           p_value=1.0 if same else 0.0)
    statistic, p_value = scipy_stats.ttest_ind(
        list(a), list(b), equal_var=False)
    return TTestResult(statistic=float(statistic), p_value=float(p_value))

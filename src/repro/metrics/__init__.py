"""Measurement: per-run metrics, cross-seed aggregation, ASCII reports.

The paper's three reported metrics (§5.2):

* average amount of data transferred (bandwidth consumed) per job,
* average job completion time = max(queue time, transfer time) + compute,
* average idle time of processors.

:class:`~repro.metrics.collector.RunMetrics` computes these (plus a richer
decomposition) from a finished :class:`~repro.grid.grid.DataGrid`;
:mod:`~repro.metrics.summary` averages across seed replications the way
§5.2 describes ("the average over the three experiments performed for each
algorithm pair"); :mod:`~repro.metrics.report` renders the figure-shaped
tables.
"""

from repro.metrics.collector import RunMetrics
from repro.metrics.export import (
    matrix_to_csv,
    sweep_to_csv,
    timeseries_to_csv,
)
from repro.metrics.report import format_matrix, format_run
from repro.metrics.stats import (
    chi_square_popularity,
    confidence_interval,
    welch_t_test,
)
from repro.metrics.summary import MetricSummary, summarize
from repro.metrics.timeseries import GridMonitor

__all__ = [
    "GridMonitor",
    "MetricSummary",
    "RunMetrics",
    "chi_square_popularity",
    "confidence_interval",
    "format_matrix",
    "format_run",
    "matrix_to_csv",
    "sweep_to_csv",
    "timeseries_to_csv",
    "summarize",
    "welch_t_test",
]

"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence.  It starts *pending*, is
*triggered* exactly once (either ``succeed`` or ``fail``), gets scheduled on
the simulator's queue, and is finally *processed* when the event loop invokes
its callbacks.  Processes wait on events by ``yield``-ing them.

Hot-path note: triggering appends directly into the simulator's bucketed
queue (a FIFO deque per distinct ``(time, priority)`` key) instead of
going through :meth:`Simulator.schedule`.  Append order within a bucket
*is* the insertion-sequence tiebreak of the kernel's determinism contract
— every push site must keep the key layout and append discipline exactly
in sync with :mod:`repro.sim.core` (the differential suite in
``tests/sim/test_differential.py`` cross-checks this against a naive
reference kernel).
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

from repro.sim.errors import EventAlreadyTriggered

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.core import Simulator

#: Sentinel marking an event whose value has not been set yet.
PENDING = object()

#: Default scheduling priority (smaller runs earlier at equal times).
PRIORITY_NORMAL = 1
#: Priority used for process-resumption bookkeeping (runs before normal).
PRIORITY_URGENT = 0


class Event:
    """A one-shot event that processes can wait on.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.core.Simulator`.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: Callbacks run when the event is processed.  ``None`` afterwards.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    # -- state -------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """``True`` once ``succeed``/``fail`` has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """``True`` once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded.  Only valid once triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, for failed events)."""
        if self._value is PENDING:
            raise AttributeError("value of untriggered event is not available")
        return self._value

    @property
    def defused(self) -> bool:
        """Whether a failure has been marked as handled.

        A failed event that is never waited on and never defused causes the
        simulation to crash when processed, so programming errors cannot be
        silently dropped.
        """
        return self._defused

    def defuse(self) -> None:
        """Mark a failed event as handled (suppresses loop crash)."""
        self._defused = True

    # -- triggering --------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        key = (sim._now, PRIORITY_NORMAL)
        bucket = sim._buckets.get(key)
        if bucket is None:
            sim._buckets[key] = bucket = deque()
            heappush(sim._keyheap, key)
        bucket.append(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        Waiting processes will have the exception re-raised at their
        ``yield``.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() expects an exception, got {exception!r}")
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        sim = self.sim
        key = (sim._now, PRIORITY_NORMAL)
        bucket = sim._buckets.get(key)
        if bucket is None:
            sim._buckets[key] = bucket = deque()
            heappush(sim._keyheap, key)
        bucket.append(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of another (triggered) event onto this one.

        Useful as a callback: ``other.callbacks.append(this.trigger)``.
        """
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        sim = self.sim
        key = (sim._now, PRIORITY_NORMAL)
        bucket = sim._buckets.get(key)
        if bucket is None:
            sim._buckets[key] = bucket = deque()
            heappush(sim._keyheap, key)
        bucket.append(self)


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    Created via :meth:`Simulator.timeout`; it is scheduled immediately on
    construction and cannot be cancelled (processes stop waiting on it by
    being interrupted instead).
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        # Timeouts dominate event traffic, so the Event/heap bookkeeping is
        # inlined here: one constructor call, one heap push.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        key = (sim._now + delay, PRIORITY_NORMAL)
        bucket = sim._buckets.get(key)
        if bucket is None:
            sim._buckets[key] = bucket = deque()
            heappush(sim._keyheap, key)
        bucket.append(self)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r}>"


class Condition(Event):
    """Composite event over several sub-events.

    Triggers when ``evaluate(events, n_processed)`` returns true or when any
    sub-event fails (the failure propagates).  The condition's value is a
    dict mapping each *processed, successful* sub-event to its value.
    """

    __slots__ = ("_events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events: List[Event] = list(events)
        self._count = 0
        for event in self._events:
            if event.sim is not sim:
                raise ValueError("cannot mix events from different simulators")
        # Register on the next tick so that already-processed events count.
        on_sub = self._on_sub_event
        for event in self._events:
            if event.callbacks is None:
                on_sub(event)
            else:
                event.callbacks.append(on_sub)
        if not self._events and self._value is PENDING:
            self.succeed({})

    @staticmethod
    def evaluate(events: List[Event], count: int) -> bool:
        """Decide whether the condition holds; overridden by subclasses."""
        raise NotImplementedError

    def _on_sub_event(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self.evaluate(self._events, self._count):
            self.succeed(self._collect())

    def _collect(self) -> dict:
        # Only *processed* sub-events count: a Timeout is triggered from
        # birth, but its occurrence is the moment it is processed.
        return {
            event: event._value
            for event in self._events
            if event.callbacks is None and event._ok
        }


class AllOf(Condition):
    """Condition that triggers when *all* sub-events have succeeded.

    This is how a grid job waits for both its processor allocation and its
    input-data transfer: response time then naturally contains
    ``max(queue time, transfer time)`` exactly as the paper defines.
    """

    __slots__ = ()

    @staticmethod
    def evaluate(events: List[Event], count: int) -> bool:
        return count >= len(events)


class AnyOf(Condition):
    """Condition that triggers when *any* sub-event has succeeded."""

    __slots__ = ()

    @staticmethod
    def evaluate(events: List[Event], count: int) -> bool:
        return count > 0 or not events

"""Exception types used by the simulation kernel."""

from __future__ import annotations

from typing import Any


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel itself."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Simulator.run` early.

    Carries the value that ``run()`` should return.
    """

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupting party may attach an arbitrary ``cause`` describing why
    the interrupt happened (e.g. a preemption record).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]


class EventAlreadyTriggered(SimulationError):
    """Raised when ``succeed``/``fail`` is called on a triggered event."""

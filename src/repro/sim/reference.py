"""A deliberately naive reference kernel for differential testing.

:class:`ReferenceSimulator` re-derives the event order from the semantic
contract alone — *events are processed in (time, priority, insertion)
order* — using none of the production kernel's machinery: no key heap, no
batched delivery, no pre-bound dispatch, no free-list recycling.  Every
step scans the live buckets with ``min()`` and delivers exactly one event
with the per-event semantics of :meth:`Simulator.step`.

It exists so that ``tests/sim/test_differential.py`` can replay canonical
workloads through both kernels and require identical recorded schedules.
The production drain loops make several non-obvious claims (batching is
ordering-neutral, preemption re-checks are sufficient, recycled bootstrap
events never alias) — the oracle checks all of them at once, because any
violation shows up as a diverging schedule.

The oracle is O(distinct keys) per event and therefore slow; never use it
outside tests.
"""

from __future__ import annotations

from typing import Any

from repro.sim.core import Simulator, _StopCallback
from repro.sim.errors import SimulationError, StopSimulation
from repro.sim.events import Event


class ReferenceSimulator(Simulator):
    """Drop-in :class:`Simulator` with a naive, unoptimized drain.

    Push sites are shared with the production kernel (events append
    themselves to ``(time, priority)`` buckets in trigger order), but the
    *pop* side is re-derived: ``min()`` over live bucket keys instead of
    the heap, one event per step, hooks honored on every event.  The key
    heap is intentionally ignored — stale keys accumulate there and are
    discarded, so the oracle's ordering decisions are independent of the
    production kernel's heap bookkeeping.
    """

    __slots__ = ()

    def peek(self) -> float:
        return min(self._buckets)[0] if self._buckets else float("inf")

    def step(self) -> None:
        buckets = self._buckets
        if not buckets:
            raise SimulationError("no scheduled events left")
        key = min(buckets)
        bucket = buckets[key]
        event = bucket.popleft()
        if not bucket:
            del buckets[key]
        self._now = key[0]

        for hook in self.pre_event_hooks:
            hook(self, event)

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - double-processing guard
            raise SimulationError(f"{event!r} was scheduled twice")
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise SimulationError(  # pragma: no cover - fail() type-checks
                f"failed event with non-exception value {exc!r}")

    def run(self, until: Any = None) -> Any:
        if until is not None:
            if isinstance(until, Event):
                if until.processed:
                    if until.ok:
                        return until.value
                    raise until.value
                until.callbacks.append(_StopCallback())
            else:
                horizon = float(until)
                if horizon < self._now:
                    raise SimulationError(
                        f"run(until={horizon}) is in the past "
                        f"(now={self._now})")
                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                self.schedule(stop_event, delay=horizon - self._now,
                              priority=-1)
                stop_event.callbacks.append(_StopCallback())

        try:
            while self._buckets:
                self.step()
        except StopSimulation as stop:
            return stop.value

        if until is not None and isinstance(until, Event):
            if not until.triggered:
                raise SimulationError(
                    f"run() finished with {until!r} still untriggered")
        return None

    def run_until_empty(self, max_events: Any = None) -> int:
        processed = 0
        while self._buckets:
            self.step()
            processed += 1
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} (possible livelock)")
        return processed

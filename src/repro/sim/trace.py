"""Lightweight event tracing for debugging and validation.

Attach a :class:`Tracer` to a simulator to record every processed event, or
use domain emissions (see :mod:`repro.trace`) to log domain-level
happenings (job dispatched, transfer started, replica created, ...).
Tracing is off by default and has zero cost when unused: every component
holds ``tracer = None`` and the hot path pays a single attribute check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator
    from repro.sim.events import Event


@dataclass
class TraceRecord:
    """One recorded trace entry."""

    time: float
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        # Sort detail keys so the rendering is stable regardless of
        # emission order or hash randomization.
        fields = " ".join(
            f"{k}={self.detail[k]}" for k in sorted(self.detail))
        return f"[{self.time:12.3f}] {self.kind:<24} {fields}"

    def as_dict(self) -> Dict[str, Any]:
        """Plain-data view (time/kind/detail), e.g. for pickling."""
        return {"time": self.time, "kind": self.kind,
                "detail": dict(self.detail)}


class Tracer:
    """Collects :class:`TraceRecord` entries, optionally filtered by kind.

    Domain modules call :meth:`emit` at interesting moments; the tracer can
    also be attached to a simulator to see raw kernel events.  A per-kind
    index is maintained incrementally so :meth:`of_kind` never re-scans
    the full record list.
    """

    def __init__(self, kinds: Optional[Tuple[str, ...]] = None,
                 max_records: Optional[int] = None) -> None:
        self.kinds = set(kinds) if kinds else None
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        self.dropped = 0
        self._sinks: List[Callable[[TraceRecord], None]] = []
        self._by_kind: Dict[str, List[TraceRecord]] = {}

    def add_sink(self, sink: Callable[[TraceRecord], None]) -> None:
        """Also forward every accepted record to ``sink`` (e.g. print)."""
        self._sinks.append(sink)

    def emit(self, time: float, kind: str, **detail: Any) -> None:
        """Record one entry (dropped if filtered out or over the cap)."""
        if self.kinds is not None and kind not in self.kinds:
            return
        if self.max_records is not None and len(self.records) >= self.max_records:
            self.dropped += 1
            return
        record = TraceRecord(time=time, kind=kind, detail=detail)
        self.records.append(record)
        self._by_kind.setdefault(kind, []).append(record)
        for sink in self._sinks:
            sink(record)

    def attach_kernel(self, sim: "Simulator") -> None:
        """Record every kernel event processed by ``sim``."""

        def hook(sim: "Simulator", event: "Event") -> None:
            self.emit(sim.now, "kernel.event", event=type(event).__name__)

        sim.pre_event_hooks.append(hook)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records of one kind, in time order (indexed, no re-scan)."""
        return list(self._by_kind.get(kind, ()))

    def counts_by_kind(self) -> Dict[str, int]:
        """Number of recorded entries per kind (sorted by kind name)."""
        return {kind: len(records)
                for kind, records in sorted(self._by_kind.items())}

    def __len__(self) -> int:
        return len(self.records)

    def dump(self) -> str:
        """Render the whole trace as text (stable across interpreter runs)."""
        return "\n".join(str(r) for r in self.records)


class NullTracer(Tracer):
    """A tracer that records nothing (the default wiring)."""

    def emit(self, time: float, kind: str, **detail: Any) -> None:  # noqa: D102
        return

"""Deterministic named random substreams.

Every stochastic component of the grid (workload generation, the JobRandom
scheduler, the DataRandom replicator, ...) draws from its own independently
seeded stream derived from one master seed.  This gives two properties the
paper's methodology needs:

* exact run-to-run reproducibility for a given seed, and
* *common random numbers* across algorithm variants — changing the external
  scheduler does not perturb the workload stream, so algorithm comparisons
  are paired rather than confounded.
"""

from __future__ import annotations

import random
from typing import Dict

import numpy as np


class RandomStreams:
    """A factory of named, deterministic random generators.

    Parameters
    ----------
    master_seed:
        The single seed all substreams derive from.

    Example
    -------
    >>> streams = RandomStreams(42)
    >>> workload_rng = streams.stream("workload")
    >>> sched_rng = streams.stream("scheduler.es")
    >>> streams.stream("workload") is workload_rng
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}
        self._np_streams: Dict[str, np.random.Generator] = {}

    def _child_seed(self, name: str) -> int:
        # Stable across processes and Python versions (unlike hash()).
        digest = np.frombuffer(
            name.encode("utf-8") + self.master_seed.to_bytes(8, "little"),
            dtype=np.uint8,
        )
        seq = np.random.SeedSequence(
            entropy=self.master_seed, spawn_key=tuple(int(b) for b in digest))
        return int(seq.generate_state(1, dtype=np.uint64)[0])

    def stream(self, name: str) -> random.Random:
        """Return the :class:`random.Random` stream for ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(self._child_seed(name))
        return self._streams[name]

    def numpy_stream(self, name: str) -> np.random.Generator:
        """Return the NumPy generator stream for ``name``."""
        if name not in self._np_streams:
            self._np_streams[name] = np.random.default_rng(
                self._child_seed(name))
        return self._np_streams[name]

    def spawn(self, label: str) -> "RandomStreams":
        """Derive a child factory (e.g. one per replicated experiment)."""
        return RandomStreams(self._child_seed(f"spawn:{label}"))

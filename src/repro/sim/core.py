"""The simulator: clock, event queue, and run loop.

Determinism contract: events are processed in ``(time, priority, sequence)``
order, where ``sequence`` is a monotonically increasing insertion counter.
Two runs with the same seed and the same code therefore produce identical
event orderings — the property the paper relies on when replicating each
experiment under three seeds ("we found no significant variation").
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.sim.errors import SimulationError, StopSimulation
from repro.sim.events import (
    PRIORITY_NORMAL,
    AllOf,
    AnyOf,
    Event,
    Timeout,
)
from repro.sim.process import Process, ProcessGenerator

Infinity = float("inf")

QueueItem = Tuple[float, int, int, Event]


class Simulator:
    """A discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> def proc(sim):
    ...     yield sim.timeout(5)
    ...     return sim.now
    >>> p = sim.process(proc(sim))
    >>> sim.run()
    >>> p.value
    5.0
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[QueueItem] = []
        self._seq = count()
        self._active_process: Optional[Process] = None
        #: Optional hooks called as ``hook(sim, event)`` just before each
        #: event's callbacks run; used by :mod:`repro.sim.trace`.
        self.pre_event_hooks: List[Callable[["Simulator", Event], None]] = []

    # -- introspection -------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` if queue is empty)."""
        return self._queue[0][0] if self._queue else Infinity

    def __len__(self) -> int:
        return len(self._queue)

    # -- event factories ------------------------------------------------------

    def event(self) -> Event:
        """Create a new, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: Optional[str] = None) -> Process:
        """Start a new process executing ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = PRIORITY_NORMAL) -> None:
        """Put a triggered event on the queue ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {event!r} in the past")
        heappush(self._queue, (self._now + delay, priority,
                               next(self._seq), event))

    def step(self) -> None:
        """Process the single next event.

        Raises
        ------
        SimulationError
            If the queue is empty.
        BaseException
            If a failed event is processed without anyone handling
            (defusing) it — typically an unhandled exception inside a
            process nobody waits on.
        """
        try:
            self._now, _, _, event = heappop(self._queue)
        except IndexError:
            raise SimulationError("no scheduled events left") from None

        for hook in self.pre_event_hooks:
            hook(self, event)

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - double-processing guard
            raise SimulationError(f"{event!r} was scheduled twice")
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise SimulationError(  # pragma: no cover - fail() type-checks
                f"failed event with non-exception value {exc!r}")

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the queue is empty.
            a number — run until simulated time reaches it.
            an :class:`Event` — run until that event is processed and return
            its value (raising its exception if it failed).
        """
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.processed:
                    if stop_event.ok:
                        return stop_event.value
                    raise stop_event.value
                stop_event.callbacks.append(_StopCallback())
            else:
                horizon = float(until)
                if horizon < self._now:
                    raise SimulationError(
                        f"run(until={horizon}) is in the past (now={self._now})")
                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                self.schedule(stop_event, delay=horizon - self._now,
                              priority=-1)
                stop_event.callbacks.append(_StopCallback())

        try:
            while self._queue:
                self.step()
        except StopSimulation as stop:
            return stop.value

        if until is not None and isinstance(until, Event):
            if not until.triggered:
                raise SimulationError(
                    f"run() finished with {until!r} still untriggered")
        return None

    def run_until_empty(self, max_events: Optional[int] = None) -> int:
        """Drain the queue, returning the number of events processed.

        ``max_events`` guards against runaway simulations in tests.
        """
        processed = 0
        while self._queue:
            self.step()
            processed += 1
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} (possible livelock)")
        return processed


class _StopCallback:
    """Callback that stops the run loop with the event's outcome."""

    def __call__(self, event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        event._defused = True
        raise event._value

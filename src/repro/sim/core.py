"""The simulator: clock, event queue, and run loop.

Determinism contract: events are processed in ``(time, priority, sequence)``
order, where ``sequence`` is a monotonically increasing insertion counter.
Two runs with the same seed and the same code therefore produce identical
event orderings — the property the paper relies on when replicating each
experiment under three seeds ("we found no significant variation").

Hot-path design (the full story is in ``docs/architecture.md``):

* **Pre-bound dispatch.**  ``run()`` binds one of two drain loops when it
  starts: a bare loop when ``pre_event_hooks`` is empty (the default) and
  an instrumented loop when hooks are attached.  A kernel whose
  tracing/fault/overload instrumentation is disabled therefore pays
  *nothing* per event for the features it is not using — not even an
  empty-list iteration.  :attr:`Simulator.dispatch_plan` reports which
  loop the next ``run()`` will bind.
* **Bucketed calendar queue.**  Events live in FIFO deques keyed by
  distinct ``(time, priority)`` pairs; a heap orders the keys.  Appending
  in trigger order makes deque position the insertion-sequence tiebreak,
  so the contract holds with no stored counter and the heap pays one
  push/pop per *distinct key* instead of per event.
* **Batched same-timestamp delivery.**  The drain loops pop a key once,
  store the clock once, and deliver the whole bucket, re-checking the
  heap head per event only for preemption (an urgent same-time event
  scheduled by a callback must still cut ahead).
* **Inlined scheduling.**  The event primitives (``events.py``) and the
  process bootstrap/finish (``process.py``) append straight into the
  buckets; :meth:`schedule` remains the validated public entry point.
* **Event free-list.**  Process-start bootstrap events are the one event
  class the kernel can prove is unreferenced after processing (created
  internally, exactly one callback, never exposed), so they are recycled
  through :attr:`Simulator._free_events` instead of reallocated for each
  of the millions of short-lived processes a campaign spawns.

Behavioural equivalence with the pre-optimization kernel is locked down by
``tests/sim/test_differential.py`` (naive reference kernel) and the golden
trace digests under ``tests/trace/golden/``.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple

from repro.sim.errors import SimulationError, StopSimulation
from repro.sim.events import (
    PRIORITY_NORMAL,
    AllOf,
    AnyOf,
    Event,
    Timeout,
)
from repro.sim.process import Process, ProcessGenerator

Infinity = float("inf")

#: A bucket key: ``(time, priority)``.  Events sharing a key are FIFO.
BucketKey = Tuple[float, int]


class Simulator:
    """A discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> def proc(sim):
    ...     yield sim.timeout(5)
    ...     return sim.now
    >>> p = sim.process(proc(sim))
    >>> sim.run()
    >>> p.value
    5.0
    """

    __slots__ = ("_now", "_buckets", "_keyheap", "_active_process",
                 "pre_event_hooks", "_free_events")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        #: Bucketed calendar queue: each distinct ``(time, priority)`` key
        #: maps to a FIFO deque of events.  Insertion order within a bucket
        #: *is* the global sequence-number tiebreak — events are appended in
        #: trigger order — so the (time, priority, sequence) contract holds
        #: without storing a counter, and the heap shrinks from one entry
        #: per event to one entry per distinct key.  Invariant outside a
        #: drain step: a key is on ``_keyheap`` iff its bucket exists (and
        #: buckets are never empty).
        self._buckets: Dict[BucketKey, Deque[Event]] = {}
        self._keyheap: List[BucketKey] = []
        self._active_process: Optional[Process] = None
        #: Optional hooks called as ``hook(sim, event)`` just before each
        #: event's callbacks run; used by :mod:`repro.sim.trace`.  Attach
        #: them *before* calling :meth:`run` — the run loop is bound once,
        #: at entry, based on whether any hooks are present.
        self.pre_event_hooks: List[Callable[["Simulator", Event], None]] = []
        #: Free-list of recycled process-bootstrap events (see module
        #: docstring).  Only :class:`~repro.sim.process.Process` touches it.
        self._free_events: List[Event] = []

    # -- introspection -------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    @property
    def dispatch_plan(self) -> str:
        """Which drain loop the next :meth:`run` will bind.

        ``"fast"`` — no hooks attached: the bare loop with zero per-event
        instrumentation cost.  ``"hooked"`` — at least one
        ``pre_event_hooks`` entry: the instrumented loop that calls every
        hook before each event's callbacks.
        """
        return "hooked" if self.pre_event_hooks else "fast"

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` if queue is empty)."""
        return self._keyheap[0][0] if self._keyheap else Infinity

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    # -- event factories ------------------------------------------------------

    def event(self) -> Event:
        """Create a new, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` simulated seconds.

        Timeouts dominate event traffic, so construction is fully inlined
        here (one Python call per timeout, mirroring
        ``Timeout.__init__``).
        """
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        ev = Timeout.__new__(Timeout)
        ev.sim = self
        ev.callbacks = []
        ev._value = value
        ev._ok = True
        ev._defused = False
        ev.delay = delay
        key = (self._now + delay, PRIORITY_NORMAL)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = bucket = deque()
            heappush(self._keyheap, key)
        bucket.append(ev)
        return ev

    def process(self, generator: ProcessGenerator,
                name: Optional[str] = None) -> Process:
        """Start a new process executing ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = PRIORITY_NORMAL) -> None:
        """Put a triggered event on the queue ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {event!r} in the past")
        key = (self._now + delay, priority)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = bucket = deque()
            heappush(self._keyheap, key)
        bucket.append(event)

    def step(self) -> None:
        """Process the single next event.

        This is the one-event-at-a-time entry point (used by tests and
        :meth:`run_until_empty`); :meth:`run` uses batched drain loops with
        identical semantics.

        Raises
        ------
        SimulationError
            If the queue is empty.
        BaseException
            If a failed event is processed without anyone handling
            (defusing) it — typically an unhandled exception inside a
            process nobody waits on.
        """
        keyheap = self._keyheap
        if not keyheap:
            raise SimulationError("no scheduled events left")
        key = keyheap[0]
        bucket = self._buckets[key]
        event = bucket.popleft()
        if not bucket:
            heappop(keyheap)
            del self._buckets[key]
        self._now = key[0]

        for hook in self.pre_event_hooks:
            hook(self, event)

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - double-processing guard
            raise SimulationError(f"{event!r} was scheduled twice")
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise SimulationError(  # pragma: no cover - fail() type-checks
                f"failed event with non-exception value {exc!r}")

    # -- drain loops (pre-bound dispatch) -------------------------------------

    def _drain_fast(self) -> None:
        """Drain the queue with zero instrumentation cost per event.

        Bound by :meth:`run` when no ``pre_event_hooks`` are attached.
        Events sharing a ``(time, priority)`` bucket are delivered in one
        batch: the clock is stored once per bucket and the inner loop
        drains the FIFO deque, re-checking the key heap only for
        *preemption* — an urgent event scheduled at the current time by a
        callback must still run before the rest of the batch.
        """
        keyheap = self._keyheap
        buckets = self._buckets
        pop = heappop
        push = heappush
        while keyheap:
            key = pop(keyheap)
            self._now = key[0]
            bucket = buckets[key]
            # The finally clause restores the key/bucket invariant even if
            # a callback stops the run or an unhandled failure propagates,
            # so a later run() continues from a consistent queue.
            try:
                while bucket:
                    event = bucket.popleft()
                    callbacks = event.callbacks
                    event.callbacks = None
                    if callbacks:
                        for callback in callbacks:
                            callback(event)
                    elif callbacks is None:  # pragma: no cover
                        raise SimulationError(f"{event!r} was scheduled twice")
                    if not event._ok and not event._defused:
                        exc = event._value
                        if isinstance(exc, BaseException):
                            raise exc
                        raise SimulationError(  # pragma: no cover
                            f"failed event with non-exception value {exc!r}")
                    if keyheap and keyheap[0] < key:
                        break
            finally:
                if bucket:
                    push(keyheap, key)
                else:
                    del buckets[key]

    def _drain_hooked(self) -> None:
        """Drain loop with ``pre_event_hooks`` instrumentation.

        Identical event semantics to :meth:`_drain_fast`; every attached
        hook runs before each event's callbacks, exactly as in
        :meth:`step`.
        """
        keyheap = self._keyheap
        buckets = self._buckets
        pop = heappop
        push = heappush
        hooks = self.pre_event_hooks
        while keyheap:
            key = pop(keyheap)
            self._now = key[0]
            bucket = buckets[key]
            try:
                while bucket:
                    event = bucket.popleft()
                    for hook in hooks:
                        hook(self, event)
                    callbacks = event.callbacks
                    event.callbacks = None
                    if callbacks:
                        for callback in callbacks:
                            callback(event)
                    elif callbacks is None:  # pragma: no cover
                        raise SimulationError(f"{event!r} was scheduled twice")
                    if not event._ok and not event._defused:
                        exc = event._value
                        if isinstance(exc, BaseException):
                            raise exc
                        raise SimulationError(  # pragma: no cover
                            f"failed event with non-exception value {exc!r}")
                    if keyheap and keyheap[0] < key:
                        break
            finally:
                if bucket:
                    push(keyheap, key)
                else:
                    del buckets[key]

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the queue is empty.
            a number — run until simulated time reaches it.
            an :class:`Event` — run until that event is processed and return
            its value (raising its exception if it failed).
        """
        if until is not None:
            if isinstance(until, Event):
                if until.processed:
                    if until.ok:
                        return until.value
                    raise until.value
                until.callbacks.append(_StopCallback())
            else:
                horizon = float(until)
                if horizon < self._now:
                    raise SimulationError(
                        f"run(until={horizon}) is in the past (now={self._now})")
                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                self.schedule(stop_event, delay=horizon - self._now,
                              priority=-1)
                stop_event.callbacks.append(_StopCallback())

        try:
            # Dispatch is bound once per run: disabled instrumentation has
            # zero per-event cost on the fast loop.
            if self.pre_event_hooks:
                self._drain_hooked()
            else:
                self._drain_fast()
        except StopSimulation as stop:
            return stop.value

        if until is not None and isinstance(until, Event):
            if not until.triggered:
                raise SimulationError(
                    f"run() finished with {until!r} still untriggered")
        return None

    def run_until_empty(self, max_events: Optional[int] = None) -> int:
        """Drain the queue, returning the number of events processed.

        ``max_events`` guards against runaway simulations in tests.
        """
        processed = 0
        while self._keyheap:
            self.step()
            processed += 1
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} (possible livelock)")
        return processed


class _StopCallback:
    """Callback that stops the run loop with the event's outcome."""

    def __call__(self, event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        event._defused = True
        raise event._value

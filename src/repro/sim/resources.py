"""Queued resources for the simulation kernel.

* :class:`Resource` — a counted resource with a FIFO wait queue (used for
  processor pools in compute elements).
* :class:`PriorityResource` — same, but requests carry a sortable priority
  (used by non-FIFO local schedulers).
* :class:`Store` — a queue of arbitrary items with blocking ``get``/``put``
  (used for incoming-job queues).
* :class:`Container` — a continuous quantity with bounded capacity (used for
  storage-space accounting when modelling quota-limited storage elements).
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import TYPE_CHECKING, Any, Callable, Deque, List, Optional

from repro.sim.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Triggers (succeeds) when the slot is granted.  Must be paired with a
    ``release`` — the object supports use as a context manager inside
    process generators::

        with resource.request() as req:
            yield req
            ... hold the resource ...
    """

    __slots__ = ("resource", "key")

    def __init__(self, resource: "Resource", key: Any = None) -> None:
        super().__init__(resource.sim)
        self.resource = resource
        self.key = key

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an ungranted request (no-op if already granted)."""
        self.resource._cancel(self)


class Resource:
    """A resource with ``capacity`` identical slots and a FIFO queue.

    The grid maps each processor pool (the site's compute elements) onto one
    ``Resource`` whose capacity is the processor count.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.sim = sim
        self._capacity = int(capacity)
        self.users: List[Request] = []
        self.queue: Deque[Request] = deque()

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {len(self.users)}/{self._capacity} "
                f"used, {len(self.queue)} queued>")

    @property
    def capacity(self) -> int:
        """Total number of slots."""
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    @property
    def queued(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self.queue)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when granted."""
        req = Request(self)
        self.queue.append(req)
        self._grant()
        return req

    def release(self, request: Request) -> None:
        """Return a granted slot (granting it to the next waiter)."""
        try:
            self.users.remove(request)
        except ValueError:
            # Releasing an ungranted request cancels it instead.
            self._cancel(request)
            return
        self._grant()

    def _cancel(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _grant(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            req = self._pop_next()
            self.users.append(req)
            req.succeed()

    def _pop_next(self) -> Request:
        return self.queue.popleft()


class PriorityResource(Resource):
    """A :class:`Resource` whose queue is ordered by request priority.

    Lower priority values are granted first; ties break FIFO.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        super().__init__(sim, capacity)
        self._heap: List[Any] = []
        self._seq = count()

    @property
    def queued(self) -> int:
        return len(self._heap)

    def request(self, priority: int = 0) -> Request:  # type: ignore[override]
        req = Request(self, key=priority)
        heapq.heappush(self._heap, (priority, next(self._seq), req))
        self._grant()
        return req

    def _cancel(self, request: Request) -> None:
        self._heap = [item for item in self._heap if item[2] is not request]
        heapq.heapify(self._heap)

    def _grant(self) -> None:
        while self._heap and len(self.users) < self._capacity:
            _, _, req = heapq.heappop(self._heap)
            self.users.append(req)
            req.succeed()

    def _pop_next(self) -> Request:  # pragma: no cover - unused via heap
        raise NotImplementedError


class StorePut(Event):
    """Pending ``put`` on a :class:`Store` (fires when accepted)."""

    __slots__ = ("item",)

    def __init__(self, sim: "Simulator", item: Any) -> None:
        super().__init__(sim)
        self.item = item


class StoreGet(Event):
    """Pending ``get`` on a :class:`Store` (fires with the item)."""

    __slots__ = ("filter",)

    def __init__(self, sim: "Simulator",
                 filter: Optional[Callable[[Any], bool]] = None) -> None:
        super().__init__(sim)
        self.filter = filter


class Store:
    """A FIFO item queue with optional capacity and filtered gets.

    Site job queues are Stores: the local scheduler ``get``s the next job,
    users/external schedulers ``put`` jobs in.
    """

    def __init__(self, sim: "Simulator",
                 capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.sim = sim
        self.capacity = capacity
        self.items: List[Any] = []
        self._putters: Deque[StorePut] = deque()
        self._getters: Deque[StoreGet] = deque()

    def __repr__(self) -> str:
        return f"<Store {len(self.items)} items>"

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; fires immediately unless the store is full."""
        event = StorePut(self.sim, item)
        self._putters.append(event)
        self._settle()
        return event

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Remove and return an item (the first matching ``filter``)."""
        event = StoreGet(self.sim, filter)
        self._getters.append(event)
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Admit pending puts while there is room.
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            # Serve getters (possibly filtered).
            for get in list(self._getters):
                match_index: Optional[int] = None
                if get.filter is None:
                    if self.items:
                        match_index = 0
                else:
                    for i, item in enumerate(self.items):
                        if get.filter(item):
                            match_index = i
                            break
                if match_index is not None:
                    self._getters.remove(get)
                    get.succeed(self.items.pop(match_index))
                    progressed = True


class Container:
    """A continuous quantity in ``[0, capacity]`` with blocking get/put.

    Used for storage-space accounting where transfers reserve space before
    the bytes arrive.
    """

    def __init__(self, sim: "Simulator", capacity: float,
                 init: float = 0.0) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init {init!r} outside [0, {capacity!r}]")
        self.sim = sim
        self.capacity = float(capacity)
        self._level = float(init)
        self._putters: Deque[Any] = deque()
        self._getters: Deque[Any] = deque()

    @property
    def level(self) -> float:
        """The current stored amount."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; blocks while it would exceed capacity."""
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount!r}")
        event = Event(self.sim)
        self._putters.append((event, amount))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount``; blocks until that much is available."""
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount!r}")
        event = Event(self.sim)
        self._getters.append((event, amount))
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity + 1e-9:
                    self._putters.popleft()
                    self._level = min(self.capacity, self._level + amount)
                    event.succeed()
                    progressed = True
            if self._getters:
                event, amount = self._getters[0]
                if self._level + 1e-9 >= amount:
                    self._getters.popleft()
                    self._level = max(0.0, self._level - amount)
                    event.succeed()
                    progressed = True

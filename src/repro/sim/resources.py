"""Queued resources for the simulation kernel.

* :class:`Resource` — a counted resource with a FIFO wait queue (used for
  processor pools in compute elements).
* :class:`PriorityResource` — same, but requests carry a sortable priority
  (used by non-FIFO local schedulers).
* :class:`Store` — a queue of arbitrary items with blocking ``get``/``put``
  (used for incoming-job queues).
* :class:`Container` — a continuous quantity with bounded capacity (used for
  storage-space accounting when modelling quota-limited storage elements).

Cancellation is *lazy*: withdrawing a request marks it cancelled in place
(O(1)) instead of removing it from the wait structure (O(n) for the FIFO
deque, O(n log n) for the priority heap's old rebuild).  Grant loops skip
tombstones as they surface.  ``queued`` counts live requests only, so the
external view is unchanged; the property suite in
``tests/sim/test_queue_properties.py`` locks the equivalence down under
random cancel/reschedule interleavings.
"""

from __future__ import annotations

from heapq import heappop, heappush
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, List, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

#: Request lifecycle states (slot ``_qstate`` on :class:`Request`).
_WAITING = 0
_GRANTED = 1
_CANCELLED = 2


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Triggers (succeeds) when the slot is granted.  Must be paired with a
    ``release`` — the object supports use as a context manager inside
    process generators::

        with resource.request() as req:
            yield req
            ... hold the resource ...
    """

    __slots__ = ("resource", "key", "_qstate")

    def __init__(self, resource: "Resource", key: Any = None) -> None:
        super().__init__(resource.sim)
        self.resource = resource
        self.key = key
        self._qstate = _WAITING

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an ungranted request (no-op if already granted).

        Idempotent: cancelling twice, or cancelling after the grant, has
        no further effect.
        """
        self.resource._cancel(self)


class Resource:
    """A resource with ``capacity`` identical slots and a FIFO queue.

    The grid maps each processor pool (the site's compute elements) onto one
    ``Resource`` whose capacity is the processor count.
    """

    __slots__ = ("sim", "_capacity", "users", "queue", "_n_cancelled")

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.sim = sim
        self._capacity = int(capacity)
        self.users: List[Request] = []
        self.queue: Deque[Request] = deque()
        #: Tombstoned (cancelled but not yet popped) requests in ``queue``.
        self._n_cancelled = 0

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {len(self.users)}/{self._capacity} "
                f"used, {self.queued} queued>")

    @property
    def capacity(self) -> int:
        """Total number of slots."""
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    @property
    def queued(self) -> int:
        """Number of live requests waiting for a slot."""
        return len(self.queue) - self._n_cancelled

    def request(self) -> Request:
        """Claim a slot; the returned event fires when granted."""
        req = Request(self)
        self.queue.append(req)
        self._grant()
        return req

    def release(self, request: Request) -> None:
        """Return a granted slot (granting it to the next waiter)."""
        try:
            self.users.remove(request)
        except ValueError:
            # Releasing an ungranted request cancels it instead.
            self._cancel(request)
            return
        self._grant()

    def _cancel(self, request: Request) -> None:
        # Lazy deletion: tombstone in place, skip at grant time.
        if request._qstate == _WAITING:
            request._qstate = _CANCELLED
            self._n_cancelled += 1

    def _grant(self) -> None:
        users = self.users
        queue = self.queue
        while queue and len(users) < self._capacity:
            req = queue.popleft()
            if req._qstate == _CANCELLED:
                self._n_cancelled -= 1
                continue
            req._qstate = _GRANTED
            users.append(req)
            req.succeed()


class PriorityResource(Resource):
    """A :class:`Resource` whose queue is ordered by request priority.

    Lower priority values are granted first; ties break FIFO.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        super().__init__(sim, capacity)
        self._heap: List[Any] = []
        self._seq = 0

    @property
    def queued(self) -> int:
        return len(self._heap) - self._n_cancelled

    def request(self, priority: int = 0) -> Request:  # type: ignore[override]
        req = Request(self, key=priority)
        self._seq = seq = self._seq + 1
        heappush(self._heap, (priority, seq, req))
        self._grant()
        return req

    def _grant(self) -> None:
        users = self.users
        heap = self._heap
        while heap and len(users) < self._capacity:
            req = heappop(heap)[2]
            if req._qstate == _CANCELLED:
                self._n_cancelled -= 1
                continue
            req._qstate = _GRANTED
            users.append(req)
            req.succeed()


class StorePut(Event):
    """Pending ``put`` on a :class:`Store` (fires when accepted)."""

    __slots__ = ("item",)

    def __init__(self, sim: "Simulator", item: Any) -> None:
        super().__init__(sim)
        self.item = item


class StoreGet(Event):
    """Pending ``get`` on a :class:`Store` (fires with the item)."""

    __slots__ = ("filter",)

    def __init__(self, sim: "Simulator",
                 filter: Optional[Callable[[Any], bool]] = None) -> None:
        super().__init__(sim)
        self.filter = filter


class Store:
    """A FIFO item queue with optional capacity and filtered gets.

    Site job queues are Stores: the local scheduler ``get``s the next job,
    users/external schedulers ``put`` jobs in.
    """

    __slots__ = ("sim", "capacity", "items", "_putters", "_getters")

    def __init__(self, sim: "Simulator",
                 capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.sim = sim
        self.capacity = capacity
        self.items: List[Any] = []
        self._putters: Deque[StorePut] = deque()
        self._getters: Deque[StoreGet] = deque()

    def __repr__(self) -> str:
        return f"<Store {len(self.items)} items>"

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; fires immediately unless the store is full."""
        event = StorePut(self.sim, item)
        self._putters.append(event)
        self._settle()
        return event

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Remove and return an item (the first matching ``filter``)."""
        event = StoreGet(self.sim, filter)
        self._getters.append(event)
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Admit pending puts while there is room.
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            # Serve getters (possibly filtered).  succeed() only schedules
            # the event — callbacks cannot mutate the deque reentrantly —
            # but iterate over a snapshot because we remove served getters.
            for get in list(self._getters):
                match_index: Optional[int] = None
                if get.filter is None:
                    if self.items:
                        match_index = 0
                else:
                    for i, item in enumerate(self.items):
                        if get.filter(item):
                            match_index = i
                            break
                if match_index is not None:
                    self._getters.remove(get)
                    get.succeed(self.items.pop(match_index))
                    progressed = True


class Container:
    """A continuous quantity in ``[0, capacity]`` with blocking get/put.

    Used for storage-space accounting where transfers reserve space before
    the bytes arrive.
    """

    __slots__ = ("sim", "capacity", "_level", "_putters", "_getters")

    def __init__(self, sim: "Simulator", capacity: float,
                 init: float = 0.0) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init {init!r} outside [0, {capacity!r}]")
        self.sim = sim
        self.capacity = float(capacity)
        self._level = float(init)
        self._putters: Deque[Any] = deque()
        self._getters: Deque[Any] = deque()

    @property
    def level(self) -> float:
        """The current stored amount."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; blocks while it would exceed capacity."""
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount!r}")
        event = Event(self.sim)
        self._putters.append((event, amount))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount``; blocks until that much is available."""
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount!r}")
        event = Event(self.sim)
        self._getters.append((event, amount))
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity + 1e-9:
                    self._putters.popleft()
                    self._level = min(self.capacity, self._level + amount)
                    event.succeed()
                    progressed = True
            if self._getters:
                event, amount = self._getters[0]
                if self._level + 1e-9 >= amount:
                    self._getters.popleft()
                    self._level = max(0.0, self._level - amount)
                    event.succeed()
                    progressed = True

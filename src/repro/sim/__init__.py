"""Discrete-event simulation kernel.

This package is the reproduction's substitute for Parsec, the C-based
simulation language ChicSim was built on (paper ref [3]).  It provides a
small, deterministic, process-based discrete-event engine:

* :class:`~repro.sim.core.Simulator` — the event loop and simulated clock.
* :class:`~repro.sim.events.Event` and friends — one-shot triggerable events,
  timeouts, and ``AllOf``/``AnyOf`` condition composition.
* :class:`~repro.sim.process.Process` — generator-coroutine processes that
  ``yield`` events to wait on them, with SimPy-style interrupts.
* :mod:`~repro.sim.resources` — queued resources (processor pools), stores,
  and containers used to model compute elements and storage.
* :mod:`~repro.sim.rng` — named, independently-seeded random substreams so
  that every run is exactly reproducible.
* :mod:`~repro.sim.reference` — a naive oracle kernel used by the
  differential test harness (never in production runs).

The engine is intentionally SimPy-like: processes are ordinary generator
functions, and the kernel guarantees a total, deterministic order of event
processing (time, priority, insertion order).
"""

from repro.sim.core import Simulator
from repro.sim.errors import Interrupt, SimulationError, StopSimulation
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.resources import Container, PriorityResource, Resource, Store
from repro.sim.rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Event",
    "Interrupt",
    "PriorityResource",
    "Process",
    "RandomStreams",
    "Resource",
    "Simulator",
    "SimulationError",
    "StopSimulation",
    "Store",
    "Timeout",
]

"""Generator-coroutine processes.

A process is an ordinary Python generator that ``yield``s events; the kernel
resumes it with the event's value (or throws the event's exception / an
:class:`~repro.sim.errors.Interrupt` into it).  The :class:`Process` object
is itself an :class:`~repro.sim.events.Event` that triggers when the
generator finishes, so processes can wait on each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import PENDING, PRIORITY_URGENT, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

ProcessGenerator = Generator[Event, Any, Any]


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process") -> None:
        super().__init__(sim)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        sim.schedule(self, priority=PRIORITY_URGENT)


class Process(Event):
    """A running process.  Triggers with the generator's return value.

    Parameters
    ----------
    sim:
        Owning simulator.
    generator:
        The generator to execute.
    name:
        Optional label used in ``repr`` and error messages.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        sim: "Simulator",
        generator: ProcessGenerator,
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(
                f"{generator!r} is not a generator; did you forget to call "
                "the process function?")
        super().__init__(sim)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None if running).
        self._target: Optional[Event] = None
        Initialize(sim, self)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'done' if self.triggered else 'alive'}>"

    @property
    def is_alive(self) -> bool:
        """``True`` while the generator has not exited."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        The process stops waiting on its current target (the target event
        itself is unaffected and may still trigger later).  Interrupting a
        finished process is an error; interrupting a process that is waiting
        on its own initialization is delivered at start.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead {self!r}")
        if self.sim.active_process is self:
            raise SimulationError(f"{self!r} cannot interrupt itself")
        # Deliver asynchronously via a failed urgent event so that interrupt
        # ordering is deterministic with respect to the event queue.
        event = Event(self.sim)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.sim.schedule(event, priority=PRIORITY_URGENT)
        # Detach from the old target so its trigger no longer resumes us.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

    # -- kernel interface ----------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.sim._active_process = self
        try:
            while True:
                if event._ok:
                    try:
                        target = self._generator.send(event._value)
                    except StopIteration as stop:
                        self._finish(ok=True, value=stop.value)
                        return
                    except Exception as err:
                        # Exception escaped the generator: process failure.
                        self._finish(ok=False, value=err)
                        return
                else:
                    # The waited-on event failed: re-raise inside the process.
                    event._defused = True
                    exc = event._value
                    try:
                        target = self._generator.throw(exc)
                    except StopIteration as stop:
                        self._finish(ok=True, value=stop.value)
                        return
                    except Exception as err:
                        # Either the original exception came back unhandled
                        # or the handler itself raised; both are failures.
                        self._finish(ok=False, value=err)
                        return
                if not isinstance(target, Event):
                    # Throw a descriptive error into the generator; if it is
                    # not caught there, the branch above turns it into a
                    # process failure on the next loop iteration.
                    bad = SimulationError(
                        f"process {self.name!r} yielded a non-event: "
                        f"{target!r}")
                    event = Event(self.sim)
                    event._ok = False
                    event._value = bad
                    event._defused = True
                    continue
                if target.sim is not self.sim:
                    bad = SimulationError(
                        f"process {self.name!r} yielded an event from a "
                        "different simulator")
                    event = Event(self.sim)
                    event._ok = False
                    event._value = bad
                    event._defused = True
                    continue
                if target.processed:
                    # Already done: loop immediately without going through
                    # the queue (same semantics, less overhead).
                    event = target
                    continue
                target.callbacks.append(self._resume)
                self._target = target
                return
        finally:
            self.sim._active_process = None

    def _finish(self, ok: bool, value: Any) -> None:
        self._target = None
        if ok:
            self.succeed(value)
        else:
            # If nobody ever waits on this process, the kernel raises the
            # exception out of ``Simulator.step`` (undefused failed event),
            # so errors are never silently swallowed.
            self.fail(value)

"""Generator-coroutine processes.

A process is an ordinary Python generator that ``yield``s events; the kernel
resumes it with the event's value (or throws the event's exception / an
:class:`~repro.sim.errors.Interrupt` into it).  The :class:`Process` object
is itself an :class:`~repro.sim.events.Event` that triggers when the
generator finishes, so processes can wait on each other.

Hot-path note: starting a process schedules a *bootstrap event* at the
current time with urgent priority.  Bootstrap events are created
internally, carry exactly one callback, and are never exposed, so they are
the one event class the kernel can prove is unreferenced once processed —
:meth:`Process._start` recycles them through the simulator's free-list
(``sim._free_events``) instead of allocating a fresh event per process.
The recycle happens *before* the generator is resumed, so a nested
``sim.process(...)`` inside the generator body may immediately reuse the
event object; ``_resume`` reads the event's outcome before handing control
to user code, which makes that aliasing safe.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import PENDING, PRIORITY_NORMAL, PRIORITY_URGENT, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

ProcessGenerator = Generator[Event, Any, Any]


class Initialize(Event):
    """A process-start bootstrap event.

    Kept for introspection/compatibility; the hot path in
    :class:`Process.__init__` builds bootstrap events from the simulator's
    free-list instead of instantiating this class.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process") -> None:
        super().__init__(sim)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        sim.schedule(self, priority=PRIORITY_URGENT)


class Process(Event):
    """A running process.  Triggers with the generator's return value.

    Parameters
    ----------
    sim:
        Owning simulator.
    generator:
        The generator to execute.
    name:
        Optional label used in ``repr`` and error messages.
    """

    __slots__ = ("_generator", "_target", "_name", "_resume_cb")

    def __init__(
        self,
        sim: "Simulator",
        generator: ProcessGenerator,
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(
                f"{generator!r} is not a generator; did you forget to call "
                "the process function?")
        self.sim = sim
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._defused = False
        self._generator = generator
        # Name resolution is deferred to the ``name`` property — most
        # processes are never printed, so don't pay getattr per spawn.
        self._name = name
        #: The event this process is currently waiting on (None if running).
        self._target: Optional[Event] = None
        #: Cached bound method — registered as the callback on every event
        #: this process waits on, so build the bound object once instead of
        #: once per wait.
        self._resume_cb = self._resume
        # Bootstrap: schedule the first resumption at the current time with
        # urgent priority, reusing a free-listed event when one is available.
        pool = sim._free_events
        if pool:
            start = pool.pop()
        else:
            start = Event.__new__(Event)
            start.sim = sim
            start._ok = True
            start._defused = False
        start._value = None
        start.callbacks = [self._start]
        key = (sim._now, PRIORITY_URGENT)
        bucket = sim._buckets.get(key)
        if bucket is None:
            sim._buckets[key] = bucket = deque()
            heappush(sim._keyheap, key)
        bucket.append(start)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'done' if self.triggered else 'alive'}>"

    @property
    def name(self) -> str:
        """Label used in ``repr`` and error messages (lazily resolved)."""
        return self._name or getattr(self._generator, "__name__", "process")

    @property
    def is_alive(self) -> bool:
        """``True`` while the generator has not exited."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        The process stops waiting on its current target (the target event
        itself is unaffected and may still trigger later).  Interrupting a
        finished process is an error; interrupting a process that is waiting
        on its own initialization is delivered at start.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead {self!r}")
        if self.sim.active_process is self:
            raise SimulationError(f"{self!r} cannot interrupt itself")
        # Deliver asynchronously via a failed urgent event so that interrupt
        # ordering is deterministic with respect to the event queue.
        event = Event(self.sim)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume_cb)
        self.sim.schedule(event, priority=PRIORITY_URGENT)
        # Detach from the old target so its trigger no longer resumes us.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        self._target = None

    # -- kernel interface ----------------------------------------------------

    def _start(self, event: Event) -> None:
        """First resumption: recycle the bootstrap event, then run.

        The recycle must happen before :meth:`_resume` so that a nested
        process spawn inside the generator body can reuse the object
        (otherwise the same event could end up both on the heap and in the
        free-list).  ``_resume`` reads the event's outcome before user code
        runs, so the early recycle is safe.
        """
        # Bootstrap events always carry (_ok=True, _defused=False,
        # _value=None); processing only cleared `callbacks`, which the
        # acquire site in __init__ resets.  Recycle as-is.
        self.sim._free_events.append(event)
        self._resume(event)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.sim._active_process = self
        try:
            while True:
                if event._ok:
                    try:
                        target = self._generator.send(event._value)
                    except StopIteration as stop:
                        self._finish(ok=True, value=stop.value)
                        return
                    except Exception as err:
                        # Exception escaped the generator: process failure.
                        self._finish(ok=False, value=err)
                        return
                else:
                    # The waited-on event failed: re-raise inside the process.
                    event._defused = True
                    exc = event._value
                    try:
                        target = self._generator.throw(exc)
                    except StopIteration as stop:
                        self._finish(ok=True, value=stop.value)
                        return
                    except Exception as err:
                        # Either the original exception came back unhandled
                        # or the handler itself raised; both are failures.
                        self._finish(ok=False, value=err)
                        return
                if not isinstance(target, Event):
                    # Throw a descriptive error into the generator; if it is
                    # not caught there, the branch above turns it into a
                    # process failure on the next loop iteration.
                    bad = SimulationError(
                        f"process {self.name!r} yielded a non-event: "
                        f"{target!r}")
                    event = Event(self.sim)
                    event._ok = False
                    event._value = bad
                    event._defused = True
                    continue
                if target.sim is not self.sim:
                    bad = SimulationError(
                        f"process {self.name!r} yielded an event from a "
                        "different simulator")
                    event = Event(self.sim)
                    event._ok = False
                    event._value = bad
                    event._defused = True
                    continue
                if target.callbacks is None:
                    # Already processed: loop immediately without going
                    # through the queue (same semantics, less overhead).
                    event = target
                    continue
                target.callbacks.append(self._resume_cb)
                self._target = target
                return
        finally:
            self.sim._active_process = None

    def _finish(self, ok: bool, value: Any) -> None:
        # Inlined succeed()/fail() minus the already-triggered guard — the
        # kernel calls _finish exactly once, when the generator exits.  A
        # failed, never-waited-on, undefused process still crashes the loop
        # (see Simulator._drain_fast), so errors are never swallowed.
        self._target = None
        self._ok = ok
        self._value = value
        sim = self.sim
        key = (sim._now, PRIORITY_NORMAL)
        bucket = sim._buckets.get(key)
        if bucket is None:
            sim._buckets[key] = bucket = deque()
            heappush(sim._keyheap, key)
        bucket.append(self)

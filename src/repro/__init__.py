"""repro — reproduction of Ranganathan & Foster (HPDC 2002).

"Decoupling Computation and Data Scheduling in Distributed Data-Intensive
Applications": a Data Grid scheduling framework in which each site runs an
External Scheduler (where do jobs go?), a Local Scheduler (what order do
they run in?), and a Dataset Scheduler (what gets replicated where?), plus
the ChicSim-style discrete-event simulation stack needed to evaluate the
4×3 algorithm family the paper studies.

Quick start::

    from repro import SimulationConfig, run_single

    config = SimulationConfig.paper().scaled(0.1)
    metrics = run_single(config, "JobDataPresent", "DataRandom")
    print(metrics.avg_response_time_s)

Package map — see DESIGN.md for the full inventory:

* :mod:`repro.sim` — discrete-event kernel (the Parsec substitute).
* :mod:`repro.network` — topology, contended links, transfers.
* :mod:`repro.grid` — sites, storage, compute, jobs, users, data mover.
* :mod:`repro.scheduling` — the paper's ES/LS/DS algorithm family.
* :mod:`repro.workload` — synthetic CMS-like workload generation.
* :mod:`repro.metrics` — the paper's metrics and reporting.
* :mod:`repro.experiments` — per-figure/table reproduction harness.
* :mod:`repro.faults` — deterministic fault injection and recovery.
"""

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import (
    build_grid,
    make_workload,
    run_matrix,
    run_replicated,
    run_single,
)
from repro.faults.plan import FaultPlan, LinkDegradation, SiteOutage
from repro.grid.grid import DataGrid
from repro.grid.overload import OverloadPolicy
from repro.grid.staleness import InfoPolicy, StaleReplicaView
from repro.metrics.collector import RunMetrics
from repro.scheduling.registry import ALL_DS, ALL_ES, ALL_LS
from repro.watchdog import InvariantViolation, Watchdog

__version__ = "1.0.0"

__all__ = [
    "ALL_DS",
    "ALL_ES",
    "ALL_LS",
    "DataGrid",
    "FaultPlan",
    "InfoPolicy",
    "InvariantViolation",
    "LinkDegradation",
    "OverloadPolicy",
    "RunMetrics",
    "SimulationConfig",
    "SiteOutage",
    "StaleReplicaView",
    "Watchdog",
    "build_grid",
    "make_workload",
    "run_matrix",
    "run_replicated",
    "run_single",
    "__version__",
]

"""Fault plans: a declarative, seed-driven description of what breaks.

A :class:`FaultPlan` is the single knob that turns the fault layer on.  It
is a frozen, hashable, JSON-round-trippable dataclass so it can live inside
:class:`~repro.experiments.config.SimulationConfig`, participate in the
parallel runner's content-addressed cache keys, and travel to worker
processes unchanged — a faulty run stays a pure function of
``(config, es, ds, seed)`` and is therefore bitwise-reproducible at any
worker count.

Two kinds of faults can be described:

* **Scripted** — explicit :class:`SiteOutage` windows and
  :class:`LinkDegradation` schedules, replayed at exact simulated times.
* **Stochastic** — site MTBF/MTTR outage loops and a per-transfer failure
  probability, drawn from a dedicated seeded stream so they never perturb
  the workload or scheduler streams (common random numbers are preserved
  across algorithm variants).

The all-zero plan (``FaultPlan.none()`` or any plan whose :attr:`is_null`
is true) installs nothing: the grid wires exactly as before and every
metric is bitwise-identical to a fault-free build.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

#: JSON stand-in for ``float('inf')`` (strict-JSON friendly).
_INF = float("inf")


def _coerce_end(value: Any) -> float:
    """Interpret an outage end: None / "inf" / missing mean permanent."""
    if value is None:
        return _INF
    if isinstance(value, str):
        if value.lower() in ("inf", "infinity", "permanent"):
            return _INF
        return float(value)
    return float(value)


@dataclass(frozen=True)
class SiteOutage:
    """One site-down window.

    ``end_s = inf`` marks a *permanent* failure: the site never comes
    back, its storage contents are lost, and its replica-catalog records
    are invalidated the moment it dies.
    """

    site: str
    start_s: float
    end_s: float = _INF

    def __post_init__(self) -> None:
        object.__setattr__(self, "end_s", _coerce_end(self.end_s))
        if self.start_s < 0:
            raise ValueError(f"outage of {self.site!r} starts in the past")
        if self.end_s <= self.start_s:
            raise ValueError(
                f"outage of {self.site!r} ends ({self.end_s}) before it "
                f"starts ({self.start_s})")

    @property
    def permanent(self) -> bool:
        """Whether the site never recovers."""
        return self.end_s == _INF


@dataclass(frozen=True)
class LinkDegradation:
    """A window during which one link's capacity is scaled by ``factor``.

    ``factor = 0`` models a dead link: capacity is clamped to a vanishing
    fraction of the original so routes stay well-defined but transfers
    crossing it stall until the data mover's timeout aborts and fails
    them over.
    """

    a: str
    b: str
    start_s: float
    end_s: float
    factor: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "end_s", _coerce_end(self.end_s))
        if self.start_s < 0:
            raise ValueError(f"degradation of {self.a!r}-{self.b!r} starts "
                             "in the past")
        if self.end_s <= self.start_s:
            raise ValueError(
                f"degradation of {self.a!r}-{self.b!r} ends before it starts")
        if not 0.0 <= self.factor < 1.0:
            raise ValueError(
                f"degradation factor must be in [0, 1), got {self.factor!r}")


@dataclass(frozen=True)
class FaultPlan:
    """Everything that goes wrong in one run, plus the recovery knobs.

    Fault sources
    -------------
    site_outages / link_degradations:
        Scripted windows (see :class:`SiteOutage`,
        :class:`LinkDegradation`).
    transfer_fail_prob:
        Probability that any individual wide-area transfer is killed
        mid-flight (a stalled/dropped connection).  Drawn per transfer
        from the plan's seeded stream.
    site_mtbf_s / site_mttr_s:
        If MTBF > 0, every site additionally fails at exponentially
        distributed intervals (mean ``site_mtbf_s``) and repairs after an
        exponentially distributed downtime (mean ``site_mttr_s``).

    Recovery knobs
    --------------
    transfer_max_retries / transfer_backoff_base_s / transfer_backoff_cap_s:
        Failed fetches retry with capped exponential backoff
        (``min(base * 2**attempt, cap)``) before the fetch is declared
        unsatisfiable.
    transfer_timeout_factor / transfer_timeout_min_s:
        A fetch is aborted (and retried) if it exceeds
        ``max(min_s, factor × uncontended-time)``; the allowance doubles
        on every retry so genuinely slow-but-alive paths still complete.
    job_max_retries / redispatch_delay_s:
        Jobs killed by an outage (or starved of data) are handed back to
        the External Scheduler after ``redispatch_delay_s`` and re-placed,
        up to ``job_max_retries`` times before the job is accounted FAILED.
    """

    site_outages: Tuple[SiteOutage, ...] = ()
    link_degradations: Tuple[LinkDegradation, ...] = ()
    transfer_fail_prob: float = 0.0
    site_mtbf_s: float = 0.0
    site_mttr_s: float = 1800.0
    seed: int = 0

    # ---- recovery policy ---------------------------------------------------
    transfer_max_retries: int = 6
    transfer_backoff_base_s: float = 10.0
    transfer_backoff_cap_s: float = 300.0
    transfer_timeout_factor: float = 25.0
    transfer_timeout_min_s: float = 120.0
    job_max_retries: int = 10
    redispatch_delay_s: float = 5.0

    def __post_init__(self) -> None:
        # Accept lists (JSON, hand-written plans) but store hashable tuples.
        object.__setattr__(
            self, "site_outages",
            tuple(o if isinstance(o, SiteOutage) else SiteOutage(**o)
                  for o in self.site_outages))
        object.__setattr__(
            self, "link_degradations",
            tuple(d if isinstance(d, LinkDegradation) else LinkDegradation(**d)
                  for d in self.link_degradations))
        if not 0.0 <= self.transfer_fail_prob <= 1.0:
            raise ValueError(
                f"transfer_fail_prob must be a probability, "
                f"got {self.transfer_fail_prob!r}")
        if self.site_mtbf_s < 0 or self.site_mttr_s <= 0:
            raise ValueError("site MTBF must be >= 0 and MTTR > 0")
        if self.transfer_max_retries < 0 or self.job_max_retries < 0:
            raise ValueError("retry limits must be >= 0")
        if (self.transfer_backoff_base_s < 0
                or self.transfer_backoff_cap_s < self.transfer_backoff_base_s):
            raise ValueError("backoff cap must be >= backoff base >= 0")
        if self.transfer_timeout_factor <= 0 or self.transfer_timeout_min_s <= 0:
            raise ValueError("transfer timeout knobs must be positive")
        if self.redispatch_delay_s < 0:
            raise ValueError("redispatch delay must be >= 0")

    # ---- queries -----------------------------------------------------------

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing (the pay-for-use guarantee)."""
        return (not self.site_outages
                and not self.link_degradations
                and self.transfer_fail_prob == 0.0
                and self.site_mtbf_s == 0.0)

    @classmethod
    def none(cls) -> "FaultPlan":
        """The canonical all-zero plan."""
        return cls()

    def with_(self, **changes) -> "FaultPlan":
        """A copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    # ---- (de)serialization ---------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        """A strict-JSON-safe dict (``inf`` becomes ``None``)."""
        out = dataclasses.asdict(self)
        for outage in out["site_outages"]:
            if outage["end_s"] == _INF:
                outage["end_s"] = None
        for deg in out["link_degradations"]:
            if deg["end_s"] == _INF:
                deg["end_s"] = None
        return out

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_json_dict`; unknown keys are rejected."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault-plan fields {sorted(unknown)}")
        return cls(**data)

    def save(self, path: Union[str, Path]) -> None:
        """Write the plan as JSON."""
        Path(path).write_text(
            json.dumps(self.to_json_dict(), indent=1, sort_keys=True))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        """Read a plan written by :meth:`save` (or by hand)."""
        return cls.from_json_dict(json.loads(Path(path).read_text()))

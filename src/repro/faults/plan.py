"""Fault plans: a declarative, seed-driven description of what breaks.

A :class:`FaultPlan` is the single knob that turns the fault layer on.  It
is a frozen, hashable, JSON-round-trippable dataclass so it can live inside
:class:`~repro.experiments.config.SimulationConfig`, participate in the
parallel runner's content-addressed cache keys, and travel to worker
processes unchanged — a faulty run stays a pure function of
``(config, es, ds, seed)`` and is therefore bitwise-reproducible at any
worker count.

Three kinds of faults can be described:

* **Scripted** — explicit :class:`SiteOutage` windows and
  :class:`LinkDegradation` schedules, replayed at exact simulated times.
* **Stochastic** — site MTBF/MTTR outage loops and a per-transfer failure
  probability, drawn from a dedicated seeded stream so they never perturb
  the workload or scheduler streams (common random numbers are preserved
  across algorithm variants).
* **Correlated** — :class:`NetworkPartition` windows (a site set is cut
  off from the rest of the grid while its jobs keep computing),
  rack-style :class:`OutageGroup` windows (whole groups of sites fail
  and recover together), and *flapping* (named sites churning on a much
  faster MTBF/MTTR than the grid-wide loop) — the failure shapes a
  heartbeat-driven detector (:mod:`repro.grid.health`) has to tell apart.
* **Durability** — scripted :class:`ReplicaCorruption` /
  :class:`ReplicaLoss` events and per-site stochastic bit-rot
  (``corruption_mtbf_s``), the fault shapes the durability layer
  (:mod:`repro.grid.durability`) detects, quarantines, and repairs.

Validation errors raise :class:`FaultPlanError` (a :class:`ValueError`
subclass) carrying the offending field, so callers can distinguish a
malformed plan from other configuration problems.

The all-zero plan (``FaultPlan.none()`` or any plan whose :attr:`is_null`
is true) installs nothing: the grid wires exactly as before and every
metric is bitwise-identical to a fault-free build.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

#: JSON stand-in for ``float('inf')`` (strict-JSON friendly).
_INF = float("inf")


class FaultPlanError(ValueError):
    """A fault plan failed validation.

    Attributes
    ----------
    field:
        The plan field (or sub-object field) the problem was found in.
    """

    def __init__(self, field: str, message: str) -> None:
        self.field = field
        super().__init__(f"{field}: {message}")


def _coerce_end(value: Any) -> float:
    """Interpret an outage end: None / "inf" / missing mean permanent."""
    if value is None:
        return _INF
    if isinstance(value, str):
        if value.lower() in ("inf", "infinity", "permanent"):
            return _INF
        return float(value)
    return float(value)


@dataclass(frozen=True)
class SiteOutage:
    """One site-down window.

    ``end_s = inf`` marks a *permanent* failure: the site never comes
    back, its storage contents are lost, and its replica-catalog records
    are invalidated the moment it dies.
    """

    site: str
    start_s: float
    end_s: float = _INF

    def __post_init__(self) -> None:
        object.__setattr__(self, "end_s", _coerce_end(self.end_s))
        if self.start_s < 0:
            raise FaultPlanError(
                "site_outages", f"outage of {self.site!r} starts in the past")
        if self.end_s <= self.start_s:
            raise FaultPlanError(
                "site_outages",
                f"outage of {self.site!r} ends ({self.end_s}) before it "
                f"starts ({self.start_s})")

    @property
    def permanent(self) -> bool:
        """Whether the site never recovers."""
        return self.end_s == _INF


@dataclass(frozen=True)
class LinkDegradation:
    """A window during which one link's capacity is scaled by ``factor``.

    ``factor = 0`` models a dead link: capacity is clamped to a vanishing
    fraction of the original so routes stay well-defined but transfers
    crossing it stall until the data mover's timeout aborts and fails
    them over.
    """

    a: str
    b: str
    start_s: float
    end_s: float
    factor: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "end_s", _coerce_end(self.end_s))
        if self.start_s < 0:
            raise FaultPlanError(
                "link_degradations",
                f"degradation of {self.a!r}-{self.b!r} starts in the past")
        if self.end_s <= self.start_s:
            raise FaultPlanError(
                "link_degradations",
                f"degradation of {self.a!r}-{self.b!r} ends before it starts")
        if not 0.0 <= self.factor < 1.0:
            raise FaultPlanError(
                "link_degradations",
                f"degradation factor must be in [0, 1), got {self.factor!r}")


@dataclass(frozen=True)
class NetworkPartition:
    """A window during which ``sites`` are cut off from the network.

    A partition is not an outage: the listed sites keep *computing* and
    their storage stays intact, but no bytes (and no heartbeats) cross
    between them and the rest of the grid — every physical link incident
    to a partitioned site is degraded to a vanishing capacity, so
    transfers touching the set stall until the data mover's timeout
    aborts them.  This is the failure shape that separates an observed
    (heartbeat-driven) detector from oracle knowledge: the site is
    *fine*, it just cannot be reached.
    """

    sites: Tuple[str, ...]
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "sites", tuple(self.sites))
        object.__setattr__(self, "end_s", _coerce_end(self.end_s))
        if not self.sites:
            raise FaultPlanError(
                "partitions", "a partition must name at least one site")
        if len(set(self.sites)) != len(self.sites):
            raise FaultPlanError(
                "partitions",
                f"partition lists a site twice: {sorted(self.sites)}")
        if self.start_s < 0:
            raise FaultPlanError(
                "partitions", "partition starts in the past")
        if self.end_s <= self.start_s:
            raise FaultPlanError(
                "partitions",
                f"partition ends ({self.end_s}) before it starts "
                f"({self.start_s})")


@dataclass(frozen=True)
class OutageGroup:
    """A rack-correlated outage: every listed site fails *together*.

    Semantically equivalent to one :class:`SiteOutage` per member with
    identical windows, but declared (and validated) as a correlated
    group, and injected in one atomic sweep — the detector sees the
    whole rack vanish at one instant.
    """

    sites: Tuple[str, ...]
    start_s: float
    end_s: float = _INF

    def __post_init__(self) -> None:
        object.__setattr__(self, "sites", tuple(self.sites))
        object.__setattr__(self, "end_s", _coerce_end(self.end_s))
        if not self.sites:
            raise FaultPlanError(
                "outage_groups", "an outage group must name at least one site")
        if len(set(self.sites)) != len(self.sites):
            raise FaultPlanError(
                "outage_groups",
                f"outage group lists a site twice: {sorted(self.sites)}")
        if self.start_s < 0:
            raise FaultPlanError(
                "outage_groups", "outage group starts in the past")
        if self.end_s <= self.start_s:
            raise FaultPlanError(
                "outage_groups",
                f"outage group ends ({self.end_s}) before it starts "
                f"({self.start_s})")

    @property
    def permanent(self) -> bool:
        """Whether the whole group never recovers."""
        return self.end_s == _INF


@dataclass(frozen=True)
class ReplicaCorruption:
    """Scripted silent corruption of one stored replica.

    At ``time_s`` the copy of ``dataset`` stored at ``site`` starts
    returning bytes that no longer match the dataset's logical checksum.
    Nothing is announced: the catalog still advertises the replica and
    reads still succeed — the corruption is only *discovered* when the
    durability layer verifies the copy (on access, on transfer, or by
    the background scrubber).  If the replica is not resident when the
    event fires, the event is a no-op.
    """

    site: str
    dataset: str
    time_s: float

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise FaultPlanError(
                "replica_corruptions",
                f"corruption of {self.dataset!r}@{self.site!r} is "
                f"scheduled in the past ({self.time_s!r})")


@dataclass(frozen=True)
class ReplicaLoss:
    """Scripted outright loss of one stored replica.

    Unlike corruption, a loss is *loud*: at ``time_s`` the copy of
    ``dataset`` at ``site`` is removed from storage and deregistered
    from the catalog immediately (a failed disk, an operator ``rm``).
    If it was the last copy, the dataset becomes unrecoverable unless a
    repair re-created a replica first.  A no-op if the replica is not
    resident when the event fires.
    """

    site: str
    dataset: str
    time_s: float

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise FaultPlanError(
                "replica_losses",
                f"loss of {self.dataset!r}@{self.site!r} is scheduled "
                f"in the past ({self.time_s!r})")


@dataclass(frozen=True)
class FaultPlan:
    """Everything that goes wrong in one run, plus the recovery knobs.

    Fault sources
    -------------
    site_outages / link_degradations:
        Scripted windows (see :class:`SiteOutage`,
        :class:`LinkDegradation`).
    transfer_fail_prob:
        Probability that any individual wide-area transfer is killed
        mid-flight (a stalled/dropped connection).  Drawn per transfer
        from the plan's seeded stream.
    site_mtbf_s / site_mttr_s:
        If MTBF > 0, every site additionally fails at exponentially
        distributed intervals (mean ``site_mtbf_s``) and repairs after an
        exponentially distributed downtime (mean ``site_mttr_s``).

    Recovery knobs
    --------------
    transfer_max_retries / transfer_backoff_base_s / transfer_backoff_cap_s:
        Failed fetches retry with capped exponential backoff
        (``min(base * 2**attempt, cap)``) before the fetch is declared
        unsatisfiable.
    transfer_timeout_factor / transfer_timeout_min_s:
        A fetch is aborted (and retried) if it exceeds
        ``max(min_s, factor × uncontended-time)``; the allowance doubles
        on every retry so genuinely slow-but-alive paths still complete.
    job_max_retries / redispatch_delay_s:
        Jobs killed by an outage (or starved of data) are handed back to
        the External Scheduler after ``redispatch_delay_s`` and re-placed,
        up to ``job_max_retries`` times before the job is accounted FAILED.
    """

    site_outages: Tuple[SiteOutage, ...] = ()
    link_degradations: Tuple[LinkDegradation, ...] = ()
    transfer_fail_prob: float = 0.0
    site_mtbf_s: float = 0.0
    site_mttr_s: float = 1800.0
    seed: int = 0

    # ---- correlated failures ----------------------------------------------
    #: Network-partition windows (site sets cut off, compute unaffected).
    partitions: Tuple[NetworkPartition, ...] = ()
    #: Rack-correlated outage groups (whole site sets fail together).
    outage_groups: Tuple[OutageGroup, ...] = ()
    #: Sites that *flap*: churn on their own fast MTBF/MTTR loop in
    #: addition to any grid-wide loop.  Empty = no flapping.
    flap_sites: Tuple[str, ...] = ()
    flap_mtbf_s: float = 0.0
    flap_mttr_s: float = 60.0

    # ---- durability faults -------------------------------------------------
    #: Scripted silent-corruption events (see :class:`ReplicaCorruption`).
    replica_corruptions: Tuple[ReplicaCorruption, ...] = ()
    #: Scripted replica-loss events (see :class:`ReplicaLoss`).
    replica_losses: Tuple[ReplicaLoss, ...] = ()
    #: Per-site mean time between bit-rot events.  > 0 arms a stochastic
    #: loop per affected site: at exponentially distributed intervals a
    #: random resident replica is silently corrupted.  0 = off.
    corruption_mtbf_s: float = 0.0
    #: Sites the bit-rot loops run on.  Empty = every site.
    corruption_sites: Tuple[str, ...] = ()
    #: Window the bit-rot loops are active in ([start, end)).
    corruption_start_s: float = 0.0
    corruption_end_s: float = _INF

    # ---- recovery policy ---------------------------------------------------
    transfer_max_retries: int = 6
    transfer_backoff_base_s: float = 10.0
    transfer_backoff_cap_s: float = 300.0
    transfer_timeout_factor: float = 25.0
    transfer_timeout_min_s: float = 120.0
    job_max_retries: int = 10
    redispatch_delay_s: float = 5.0

    def __post_init__(self) -> None:
        # Accept lists (JSON, hand-written plans) but store hashable tuples.
        object.__setattr__(
            self, "site_outages",
            tuple(o if isinstance(o, SiteOutage) else SiteOutage(**o)
                  for o in self.site_outages))
        object.__setattr__(
            self, "link_degradations",
            tuple(d if isinstance(d, LinkDegradation) else LinkDegradation(**d)
                  for d in self.link_degradations))
        object.__setattr__(
            self, "partitions",
            tuple(p if isinstance(p, NetworkPartition) else NetworkPartition(**p)
                  for p in self.partitions))
        object.__setattr__(
            self, "outage_groups",
            tuple(g if isinstance(g, OutageGroup) else OutageGroup(**g)
                  for g in self.outage_groups))
        object.__setattr__(self, "flap_sites", tuple(self.flap_sites))
        object.__setattr__(
            self, "replica_corruptions",
            tuple(c if isinstance(c, ReplicaCorruption)
                  else ReplicaCorruption(**c)
                  for c in self.replica_corruptions))
        object.__setattr__(
            self, "replica_losses",
            tuple(l if isinstance(l, ReplicaLoss) else ReplicaLoss(**l)
                  for l in self.replica_losses))
        object.__setattr__(
            self, "corruption_sites", tuple(self.corruption_sites))
        object.__setattr__(
            self, "corruption_end_s", _coerce_end(self.corruption_end_s))
        if not 0.0 <= self.transfer_fail_prob <= 1.0:
            raise FaultPlanError(
                "transfer_fail_prob",
                f"must be a probability, got {self.transfer_fail_prob!r}")
        if self.site_mtbf_s < 0:
            raise FaultPlanError(
                "site_mtbf_s", f"MTBF must be >= 0, got {self.site_mtbf_s!r}")
        if self.site_mttr_s <= 0:
            raise FaultPlanError(
                "site_mttr_s", f"MTTR must be > 0, got {self.site_mttr_s!r}")
        if self.flap_mtbf_s < 0:
            raise FaultPlanError(
                "flap_mtbf_s",
                f"flap MTBF must be >= 0, got {self.flap_mtbf_s!r}")
        if self.flap_mttr_s <= 0:
            raise FaultPlanError(
                "flap_mttr_s",
                f"flap MTTR must be > 0, got {self.flap_mttr_s!r}")
        if self.flap_sites and self.flap_mtbf_s == 0.0:
            raise FaultPlanError(
                "flap_sites",
                "flap_sites named but flap_mtbf_s is 0 (flapping off)")
        if len(set(self.flap_sites)) != len(self.flap_sites):
            raise FaultPlanError(
                "flap_sites",
                f"a site is listed twice: {sorted(self.flap_sites)}")
        if self.corruption_mtbf_s < 0:
            raise FaultPlanError(
                "corruption_mtbf_s",
                f"corruption MTBF must be >= 0, "
                f"got {self.corruption_mtbf_s!r}")
        if self.corruption_sites and self.corruption_mtbf_s == 0.0:
            raise FaultPlanError(
                "corruption_sites",
                "corruption_sites named but corruption_mtbf_s is 0 "
                "(bit-rot off)")
        if len(set(self.corruption_sites)) != len(self.corruption_sites):
            raise FaultPlanError(
                "corruption_sites",
                f"a site is listed twice: {sorted(self.corruption_sites)}")
        if self.corruption_start_s < 0:
            raise FaultPlanError(
                "corruption_start_s",
                f"corruption window starts in the past "
                f"({self.corruption_start_s!r})")
        if self.corruption_end_s <= self.corruption_start_s:
            raise FaultPlanError(
                "corruption_end_s",
                f"corruption window ends ({self.corruption_end_s}) before "
                f"it starts ({self.corruption_start_s})")
        if self.transfer_max_retries < 0 or self.job_max_retries < 0:
            raise FaultPlanError(
                "transfer_max_retries", "retry limits must be >= 0")
        if (self.transfer_backoff_base_s < 0
                or self.transfer_backoff_cap_s < self.transfer_backoff_base_s):
            raise FaultPlanError(
                "transfer_backoff_base_s",
                "backoff cap must be >= backoff base >= 0")
        if self.transfer_timeout_factor <= 0 or self.transfer_timeout_min_s <= 0:
            raise FaultPlanError(
                "transfer_timeout_factor",
                "transfer timeout knobs must be positive")
        if self.redispatch_delay_s < 0:
            raise FaultPlanError(
                "redispatch_delay_s", "redispatch delay must be >= 0")
        self._check_overlaps()

    def _check_overlaps(self) -> None:
        """Reject overlapping outage windows for the same site.

        Two down-windows covering the same site at the same instant are
        ambiguous (whose end brings the site back?) and used to silently
        misbehave.  Group-derived windows count: an :class:`OutageGroup`
        is one window per member.
        """
        windows: Dict[str, list] = {}
        for outage in self.site_outages:
            windows.setdefault(outage.site, []).append(
                (outage.start_s, outage.end_s, "site_outages"))
        for group in self.outage_groups:
            for site in group.sites:
                windows.setdefault(site, []).append(
                    (group.start_s, group.end_s, "outage_groups"))
        for site, spans in windows.items():
            spans.sort()
            for (s1, e1, f1), (s2, e2, f2) in zip(spans, spans[1:]):
                if s2 < e1:
                    raise FaultPlanError(
                        f1 if f1 == f2 else f"{f1}/{f2}",
                        f"overlapping outage windows for {site!r}: "
                        f"[{s1}, {e1}) and [{s2}, {e2})")

    # ---- queries -----------------------------------------------------------

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing (the pay-for-use guarantee)."""
        return (not self.site_outages
                and not self.link_degradations
                and self.transfer_fail_prob == 0.0
                and self.site_mtbf_s == 0.0
                and not self.partitions
                and not self.outage_groups
                and self.flap_mtbf_s == 0.0
                and not self.has_durability_faults)

    @property
    def has_durability_faults(self) -> bool:
        """True when the plan can corrupt or destroy stored replicas.

        :meth:`~repro.grid.grid.DataGrid.create` uses this to arm the
        durability layer's detection machinery even when no explicit
        :class:`~repro.grid.durability.DurabilityPolicy` was given.
        """
        return (bool(self.replica_corruptions)
                or bool(self.replica_losses)
                or self.corruption_mtbf_s > 0.0)

    @classmethod
    def none(cls) -> "FaultPlan":
        """The canonical all-zero plan."""
        return cls()

    def with_(self, **changes) -> "FaultPlan":
        """A copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    # ---- (de)serialization ---------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        """A strict-JSON-safe dict (``inf`` becomes ``None``)."""
        out = dataclasses.asdict(self)
        for window in (out["site_outages"] + out["link_degradations"]
                       + out["partitions"] + out["outage_groups"]):
            if window["end_s"] == _INF:
                window["end_s"] = None
        for group in out["partitions"] + out["outage_groups"]:
            group["sites"] = list(group["sites"])
        out["flap_sites"] = list(out["flap_sites"])
        out["replica_corruptions"] = list(out["replica_corruptions"])
        out["replica_losses"] = list(out["replica_losses"])
        out["corruption_sites"] = list(out["corruption_sites"])
        if out["corruption_end_s"] == _INF:
            out["corruption_end_s"] = None
        return out

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_json_dict`; unknown keys are rejected."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault-plan fields {sorted(unknown)}")
        return cls(**data)

    def save(self, path: Union[str, Path]) -> None:
        """Write the plan as JSON."""
        Path(path).write_text(
            json.dumps(self.to_json_dict(), indent=1, sort_keys=True))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        """Read a plan written by :meth:`save` (or by hand)."""
        return cls.from_json_dict(json.loads(Path(path).read_text()))

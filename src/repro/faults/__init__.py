"""repro.faults — deterministic fault injection and recovery.

* :class:`~repro.faults.plan.FaultPlan` (+ :class:`SiteOutage`,
  :class:`LinkDegradation`) — the declarative, seed-driven description of
  what breaks during a run.
* :class:`~repro.faults.injector.FaultInjector` — replays a plan against
  a wired grid: site outages (scripted and MTBF-driven), link
  degradation, transfer drops, and all the recovery accounting.

See docs/faults.md for the fault model and determinism guarantees.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, LinkDegradation, SiteOutage

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "LinkDegradation",
    "SiteOutage",
]

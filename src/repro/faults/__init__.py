"""repro.faults — deterministic fault injection and recovery.

* :class:`~repro.faults.plan.FaultPlan` (+ :class:`SiteOutage`,
  :class:`LinkDegradation`, :class:`NetworkPartition`,
  :class:`OutageGroup`, :class:`ReplicaCorruption`,
  :class:`ReplicaLoss`) — the declarative, seed-driven description of
  what breaks during a run; :class:`FaultPlanError` rejects
  ill-formed plans at construction time.
* :class:`~repro.faults.injector.FaultInjector` — replays a plan against
  a wired grid: site outages (scripted, MTBF-driven, flapping, and
  correlated groups), network partitions, link degradation, transfer
  drops, and all the recovery accounting.
* :class:`~repro.faults.backoff.BackoffPolicy` — the shared
  exponential-backoff schedule used by the data mover, the recovery
  supervisor, and the health layer's half-open probes.

See docs/faults.md for the fault model and determinism guarantees.
"""

from repro.faults.backoff import BackoffPolicy
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultPlan,
    FaultPlanError,
    LinkDegradation,
    NetworkPartition,
    OutageGroup,
    ReplicaCorruption,
    ReplicaLoss,
    SiteOutage,
)

__all__ = [
    "BackoffPolicy",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "LinkDegradation",
    "NetworkPartition",
    "OutageGroup",
    "ReplicaCorruption",
    "ReplicaLoss",
    "SiteOutage",
]

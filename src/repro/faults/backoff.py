"""Seeded retry-backoff schedules shared by every recovery loop.

Three subsystems wait between retry attempts — the
:class:`~repro.grid.datamover.DataMover`'s transfer failover, the grid's
job re-dispatch supervisor, and the health layer's half-open breaker
prober — and they must all compute their delays the same way or the
recovery story fragments into three subtly different formulas.  This
module is that single formula:

    ``delay(attempt) = min(base * factor ** (attempt - 1), cap)``

optionally spread by seeded jitter (a uniform ±``jitter`` fraction drawn
from a caller-supplied :class:`random.Random`), so synchronized retry
herds can be broken *deterministically*: the same seed always yields the
same jittered sequence, keeping faulty runs bitwise-reproducible at any
worker count.

With ``jitter = 0`` (the default) the schedule is exactly the historical
``min(base * 2 ** (attempt - 1), cap)`` the data mover has always used,
so adopting the helper changes no existing run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class BackoffPolicy:
    """One capped-exponential retry schedule.

    Parameters
    ----------
    base_s:
        Delay before the first retry (attempt 1).
    cap_s:
        Ceiling the schedule saturates at.  A constant delay is simply
        ``BackoffPolicy(d, d)``.
    factor:
        Growth per attempt (2 = classic doubling).
    jitter:
        Fractional spread in ``[0, 1)``: each delay is scaled by a
        uniform draw from ``[1 - jitter, 1 + jitter]``.  0 = none.
    """

    base_s: float
    cap_s: float
    factor: float = 2.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.base_s < 0:
            raise ValueError(f"backoff base must be >= 0, got {self.base_s!r}")
        if self.cap_s < self.base_s:
            raise ValueError(
                f"backoff cap ({self.cap_s!r}) must be >= base "
                f"({self.base_s!r})")
        if self.factor < 1.0:
            raise ValueError(
                f"backoff factor must be >= 1, got {self.factor!r}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(
                f"backoff jitter must be in [0, 1), got {self.jitter!r}")

    def delay(self, attempt: int,
              rng: Optional[random.Random] = None) -> float:
        """The wait before retry ``attempt`` (1-based).

        ``rng`` is only consulted when :attr:`jitter` is non-zero, so a
        jitter-free policy never perturbs a seeded stream.
        """
        if attempt < 1:
            raise ValueError(f"attempt numbers are 1-based, got {attempt!r}")
        value = min(self.base_s * self.factor ** (attempt - 1), self.cap_s)
        if self.jitter > 0.0:
            if rng is None:
                raise ValueError("jittered backoff needs a seeded rng")
            value *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return value

    def schedule(self, attempts: int,
                 rng: Optional[random.Random] = None) -> list:
        """The first ``attempts`` delays as a list (test/reporting aid)."""
        return [self.delay(i, rng) for i in range(1, attempts + 1)]

"""The fault injector: replays a :class:`~repro.faults.plan.FaultPlan`.

One injector is wired into a :class:`~repro.grid.grid.DataGrid` when the
grid is built with a non-null plan.  It owns every piece of failure state
and all recovery accounting:

* **Site outages** — scripted windows and/or MTBF-driven loops.  When a
  site goes down, every job queued or running there is killed (processor
  requests cancelled, compute aborted, pins released) and handed back to
  the grid's re-dispatch supervisor; in-flight transfers touching the
  site are aborted; the information service stops advertising the site.
  A *permanent* outage additionally wipes the site's storage and
  invalidates its replica-catalog records.
* **Link degradation** — link capacities are scaled down for a window
  (factor 0 ≈ dead link) and every active transfer is re-rated.
* **Transfer sabotage** — with ``transfer_fail_prob``, a freshly started
  transfer is scheduled to be killed partway through.
* **Durability faults** — scripted silent corruption / replica loss and
  per-site stochastic bit-rot, forwarded to the grid's durability layer
  (:mod:`repro.grid.durability`), which owns detection and repair.

Determinism: all randomness comes from one injected
:class:`random.Random` (derived from the run's named streams), per-site
loops get their own sub-streams drawn in sorted site order, and every
action happens through simulator events — so a seeded faulty run is
bitwise-identical across processes, worker counts, and cache replays.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.faults.plan import (
    FaultPlan,
    LinkDegradation,
    NetworkPartition,
    OutageGroup,
    SiteOutage,
)
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.grid import DataGrid
    from repro.network.transfer import Transfer
    from repro.sim.core import Simulator


class FaultInjector:
    """Drives faults into a wired grid and tracks recovery metrics.

    Parameters
    ----------
    sim, grid:
        The simulator and the fully wired grid.
    plan:
        The fault plan to execute (must not be null — a null plan should
        simply not install an injector).
    rng:
        Seeded stream for stochastic faults.
    """

    def __init__(self, sim: "Simulator", grid: "DataGrid", plan: FaultPlan,
                 rng: Optional[random.Random] = None) -> None:
        if plan.is_null:
            raise ValueError(
                "null fault plan: build the grid without an injector")
        self.sim = sim
        self.grid = grid
        self.plan = plan
        self.rng = rng or random.Random(plan.seed)

        #: Sites currently unavailable (includes permanently dead ones).
        self.down: Set[str] = set()
        #: Sites that died permanently (never recover).
        self.dead: Set[str] = set()
        #: Sites currently cut off by a network partition: computing, but
        #: unreachable (no transfers in or out, no heartbeats observed).
        self.partitioned: Set[str] = set()
        self._down_since: Dict[str, float] = {}
        self._partitioned_since: Dict[str, float] = {}
        self._downtime_s: Dict[str, float] = {name: 0.0 for name in grid.sites}
        self._link_base: Dict[object, float] = {}
        self._recovery_waiters: List[Event] = []

        # ---- recovery metrics ------------------------------------------------
        #: Job attempts killed by an outage (or data starvation) and
        #: re-dispatched by the External Scheduler.
        self.jobs_retried = 0
        #: Jobs that exhausted their retry budget and were accounted FAILED.
        self.jobs_failed = 0
        #: Dispatches the ES aimed at a down site that were re-routed.
        self.jobs_redirected = 0
        #: Replica records invalidated by permanent site loss.
        self.replicas_invalidated = 0
        #: Sites taken down (windows started), for reporting.
        self.outages_started = 0
        #: Domain-event tracer, copied from the grid at :meth:`install`
        #: (None = tracing off; one attribute check per fault action).
        self.tracer = None

    # -- installation -----------------------------------------------------------

    def install(self) -> None:
        """Wire the injector into the grid and spawn its driver processes."""
        grid = self.grid
        grid.faults = self
        grid.datamover.faults = self
        self.tracer = grid.tracer
        for site in grid.sites.values():
            site.faults = self
        for outage in self.plan.site_outages:
            if outage.site not in grid.sites:
                raise ValueError(
                    f"fault plan names unknown site {outage.site!r}")
            self.sim.process(self._scripted_outage(outage),
                             name=f"fault:outage:{outage.site}")
        for deg in self.plan.link_degradations:
            try:
                link = grid.topology.link_between(deg.a, deg.b)
            except KeyError:
                raise ValueError(
                    f"fault plan degrades nonexistent link "
                    f"{deg.a!r}-{deg.b!r}; name a physical link "
                    f"(site-to-hub in tiered topologies)") from None
            self.sim.process(self._scripted_degradation(deg, link),
                             name=f"fault:link:{deg.a}-{deg.b}")
        for group in self.plan.outage_groups:
            unknown = set(group.sites) - set(grid.sites)
            if unknown:
                raise ValueError(
                    f"fault plan's outage group names unknown sites "
                    f"{sorted(unknown)}")
            self.sim.process(self._group_outage(group),
                             name=f"fault:group:{group.sites[0]}")
        for partition in self.plan.partitions:
            unknown = set(partition.sites) - set(grid.sites)
            if unknown:
                raise ValueError(
                    f"fault plan's partition names unknown sites "
                    f"{sorted(unknown)}")
            self.sim.process(self._partition_window(partition),
                             name=f"fault:partition:{partition.sites[0]}")
        if self.plan.site_mtbf_s > 0:
            # Per-site sub-streams drawn in sorted order: deterministic and
            # independent of how the site processes later interleave.
            for name in sorted(grid.sites):
                site_rng = random.Random(self.rng.randrange(2 ** 62))
                self.sim.process(
                    self._mtbf_loop(name, site_rng, self.plan.site_mtbf_s,
                                    self.plan.site_mttr_s),
                    name=f"fault:mtbf:{name}")
        if self.plan.flap_mtbf_s > 0:
            unknown = set(self.plan.flap_sites) - set(grid.sites)
            if unknown:
                raise ValueError(
                    f"fault plan flaps unknown sites {sorted(unknown)}")
            # Same sorted-substream discipline as the grid-wide loop, on a
            # deliberately fast churn so the detector sees rapid up/down.
            for name in sorted(self.plan.flap_sites):
                site_rng = random.Random(self.rng.randrange(2 ** 62))
                self.sim.process(
                    self._mtbf_loop(name, site_rng, self.plan.flap_mtbf_s,
                                    self.plan.flap_mttr_s),
                    name=f"fault:flap:{name}")
        if self.plan.transfer_fail_prob > 0:
            grid.transfers.on_start.append(self._maybe_sabotage)
        for corruption in self.plan.replica_corruptions:
            self._validate_durability_target(corruption.site,
                                             corruption.dataset,
                                             "corruption")
            self.sim.process(
                self._scripted_corruption(corruption),
                name=f"fault:corrupt:{corruption.dataset}@{corruption.site}")
        for loss in self.plan.replica_losses:
            self._validate_durability_target(loss.site, loss.dataset,
                                             "replica loss")
            self.sim.process(
                self._scripted_loss(loss),
                name=f"fault:lose:{loss.dataset}@{loss.site}")
        if self.plan.corruption_mtbf_s > 0:
            targets = self.plan.corruption_sites or tuple(sorted(grid.sites))
            unknown = set(targets) - set(grid.sites)
            if unknown:
                raise ValueError(
                    f"fault plan's bit-rot names unknown sites "
                    f"{sorted(unknown)}")
            # Sorted sub-streams, drawn after every other fault source so
            # adding bit-rot to a plan leaves the other streams intact.
            for name in sorted(targets):
                site_rng = random.Random(self.rng.randrange(2 ** 62))
                self.sim.process(self._bitrot_loop(name, site_rng),
                                 name=f"fault:bitrot:{name}")

    # -- site availability --------------------------------------------------------

    def is_up(self, site: str) -> bool:
        """Whether a site is currently available."""
        return site not in self.down

    def is_reachable(self, site: str) -> bool:
        """Whether a site is up *and* not cut off by a partition.

        This is what an outside observer (heartbeat detector, probe,
        dispatch hand-off) can actually distinguish: a partitioned site
        is alive but looks exactly like a dead one from across the wire.
        """
        return site not in self.down and site not in self.partitioned

    def unobservable_since(self, site: str) -> Optional[float]:
        """When the site last became unreachable (None = reachable).

        Accounting aid for the health layer's detection-latency metric;
        never used to make scheduling decisions.
        """
        down = self._down_since.get(site)
        cut = self._partitioned_since.get(site)
        if down is None:
            return cut
        if cut is None:
            return down
        return min(down, cut)

    def any_site_up(self) -> bool:
        """Whether at least one site can accept work."""
        return len(self.down) < len(self.grid.sites)

    @property
    def grid_lost(self) -> bool:
        """True when every site is permanently dead — nothing can recover."""
        return len(self.dead) == len(self.grid.sites)

    def recovery_event(self) -> Event:
        """An event that fires the next time any site comes back up."""
        event = Event(self.sim)
        self._recovery_waiters.append(event)
        return event

    def wake_recovery_waiters(self, site: Optional[str]) -> None:
        """Fire every parked :meth:`recovery_event` with ``site``.

        Called on natural recovery (:meth:`bring_site_up`), on partition
        heal, and by the health layer when a breaker re-admits a site in
        observed mode — any of these can unblock a parked supervisor.
        """
        waiters, self._recovery_waiters = self._recovery_waiters, []
        for event in waiters:
            event.succeed(site)

    def fallback_site(self) -> Optional[str]:
        """Deterministic stand-in when the ES picks a down site.

        The least-loaded available site (ties by name) — the closest
        analogue of what a real broker does when its first choice bounces.
        """
        if not self.any_site_up():
            return None
        candidates = None
        if self.partitioned:
            # A partitioned site is advertised (it is alive, and in
            # observed mode nothing marks it down) but a dispatch to it
            # would just bounce again — fall back around the cut.
            candidates = [name for name in self.grid.info.site_names
                          if name not in self.partitioned]
            if not candidates:
                return None
        try:
            return self.grid.info.least_loaded(candidates)
        except ValueError:
            # Observed mode can quarantine every advertised site even
            # while some are physically up; callers treat None as "park
            # and wait for recovery".
            return None

    # -- outage mechanics ---------------------------------------------------------

    def take_site_down(self, site: str, permanent: bool = False) -> bool:
        """Fail a site now.  Returns False if it was already down."""
        if site in self.down:
            if permanent and site not in self.dead:
                self._make_permanent(site)
                return True
            return False
        self.down.add(site)
        self._down_since[site] = self.sim.now
        self.outages_started += 1
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, "fault.site_down", site=site,
                             permanent=permanent)
        if self._oracle_visible():
            self.grid.info.mark_site_down(site)
        if permanent:
            self._make_permanent(site)
        # Kill everything the site was doing.
        self.grid.sites[site].fail_site()
        # Abort in-flight transfers touching the site; the data mover's
        # retry machinery fails the survivors over to other replicas.
        transfers = self.grid.transfers
        for transfer in [t for t in list(transfers.active)
                         if site in (t.src, t.dst)]:
            transfers.abort(transfer, reason=f"site {site} down")
        return True

    def bring_site_up(self, site: str) -> bool:
        """Recover a (non-permanently) failed site."""
        if site not in self.down or site in self.dead:
            return False
        self.down.discard(site)
        self._downtime_s[site] += self.sim.now - self._down_since.pop(site)
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, "fault.site_up", site=site)
        if self._oracle_visible():
            self.grid.info.mark_site_up(site)
        self.wake_recovery_waiters(site)
        return True

    def _oracle_visible(self) -> bool:
        """Whether outages propagate to the information service directly.

        With an *observed-only* health policy the oracle channel is cut:
        the information service learns about failure exclusively through
        missed heartbeats and tripped breakers.  Permanent deaths still
        invalidate the catalog (the disks really are gone — that is
        physical state, not knowledge).
        """
        health = self.grid.health
        return health is None or not health.policy.observed_only

    def _make_permanent(self, site: str) -> None:
        self.dead.add(site)
        # The disks are gone: wipe storage and invalidate the catalog.
        invalidated = self.grid.catalog.invalidate_site(site)
        self.replicas_invalidated += len(invalidated)
        storage = self.grid.storages[site]
        for name in list(storage.files):
            storage.remove(name)
        if self.grid_lost:
            # Recovery is now impossible; wake parked dispatch supervisors
            # so they can observe it and fail their jobs instead of waiting
            # on a recovery that will never come.
            self.wake_recovery_waiters(None)

    def _scripted_outage(self, outage: SiteOutage):
        if outage.start_s > 0:
            yield self.sim.timeout(outage.start_s)
        self.take_site_down(outage.site, permanent=outage.permanent)
        if not outage.permanent:
            yield self.sim.timeout(outage.end_s - outage.start_s)
            self.bring_site_up(outage.site)

    def _mtbf_loop(self, site: str, rng: random.Random,
                   mtbf_s: float, mttr_s: float):
        while True:
            yield self.sim.timeout(rng.expovariate(1.0 / mtbf_s))
            if site in self.down:  # scripted window already has it down
                continue
            self.take_site_down(site)
            yield self.sim.timeout(rng.expovariate(1.0 / mttr_s))
            self.bring_site_up(site)

    def _group_outage(self, group: OutageGroup):
        # Rack-correlated loss: the whole group drops at one instant, in
        # declared order, and (if transient) recovers together.
        if group.start_s > 0:
            yield self.sim.timeout(group.start_s)
        for site in group.sites:
            self.take_site_down(site, permanent=group.permanent)
        if not group.permanent:
            yield self.sim.timeout(group.end_s - group.start_s)
            for site in group.sites:
                self.bring_site_up(site)

    # -- link mechanics -----------------------------------------------------------

    #: Floor applied to a factor-0 ("dead") link so routes and rate
    #: allocation stay well-defined; transfers crossing it effectively
    #: stall and are recovered by the fetch timeout.
    DEAD_LINK_FACTOR = 1e-6

    def _scripted_degradation(self, deg: LinkDegradation, link):
        if deg.start_s > 0:
            yield self.sim.timeout(deg.start_s)
        self._link_base.setdefault(link, link.capacity_mbps)
        factor = max(deg.factor, self.DEAD_LINK_FACTOR)
        link.capacity_mbps = self._link_base[link] * factor
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, "fault.link_degrade",
                             a=deg.a, b=deg.b, factor=deg.factor)
        self.grid.transfers.rebalance()
        if deg.end_s != float("inf"):
            yield self.sim.timeout(deg.end_s - deg.start_s)
            link.capacity_mbps = self._link_base[link]
            if self.tracer is not None:
                self.tracer.emit(self.sim.now, "fault.link_restore",
                                 a=deg.a, b=deg.b)
            self.grid.transfers.rebalance()

    def _partition_window(self, partition: NetworkPartition):
        # A partition is not an outage: the cut sites keep *computing*,
        # but nothing crosses the boundary — transfers stall, heartbeats
        # vanish, and only an observed detector can tell the difference.
        if partition.start_s > 0:
            yield self.sim.timeout(partition.start_s)
        cut = set(partition.sites)
        for site in partition.sites:
            self.partitioned.add(site)
            self._partitioned_since.setdefault(site, self.sim.now)
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, "fault.partition",
                             sites=list(partition.sites))
        severed = []
        for link in self.grid.topology.links:
            if link.a in cut or link.b in cut:
                self._link_base.setdefault(link, link.capacity_mbps)
                link.capacity_mbps = (
                    self._link_base[link] * self.DEAD_LINK_FACTOR)
                severed.append(link)
        transfers = self.grid.transfers
        for transfer in [t for t in list(transfers.active)
                         if t.src in cut or t.dst in cut]:
            transfers.abort(transfer, reason="network partition")
        transfers.rebalance()
        yield self.sim.timeout(partition.end_s - partition.start_s)
        for link in severed:
            link.capacity_mbps = self._link_base[link]
        for site in partition.sites:
            self.partitioned.discard(site)
            self._partitioned_since.pop(site, None)
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, "fault.partition_heal",
                             sites=list(partition.sites))
        transfers.rebalance()
        # The cut sites were never down, so no fault.site_up fires — wake
        # parked supervisors ourselves so work resumes promptly.
        self.wake_recovery_waiters(partition.sites[0])

    # -- durability faults ----------------------------------------------------------

    def _validate_durability_target(self, site: str, dataset: str,
                                    what: str) -> None:
        if site not in self.grid.sites:
            raise ValueError(
                f"fault plan's {what} names unknown site {site!r}")
        if dataset not in self.grid.datasets:
            raise ValueError(
                f"fault plan's {what} names unknown dataset {dataset!r}")

    def _scripted_corruption(self, event):
        if event.time_s > 0:
            yield self.sim.timeout(event.time_s)
        if self.grid.durability is not None:
            self.grid.durability.corrupt(event.site, event.dataset)

    def _scripted_loss(self, event):
        if event.time_s > 0:
            yield self.sim.timeout(event.time_s)
        if self.grid.durability is not None:
            self.grid.durability.lose_replica(event.site, event.dataset)

    def _bitrot_loop(self, site: str, rng: random.Random):
        """Stochastic silent corruption of resident replicas at one site.

        Poisson arrivals at ``corruption_mtbf_s`` within the plan's
        ``[corruption_start_s, corruption_end_s)`` window; each event
        flips one uniformly chosen resident file.  An empty storage
        element simply skips the tick.
        """
        plan = self.plan
        if plan.corruption_start_s > 0:
            yield self.sim.timeout(plan.corruption_start_s)
        while True:
            wait = rng.expovariate(1.0 / plan.corruption_mtbf_s)
            if self.sim.now + wait >= plan.corruption_end_s:
                return
            yield self.sim.timeout(wait)
            durability = self.grid.durability
            if durability is None:  # pragma: no cover - defensive
                return
            files = sorted(self.grid.storages[site].files)
            if not files:
                continue
            durability.corrupt(site, rng.choice(files))

    # -- transfer sabotage ----------------------------------------------------------

    def _maybe_sabotage(self, transfer: "Transfer") -> None:
        if not transfer.route:
            return  # local move, nothing to kill
        if self.rng.random() >= self.plan.transfer_fail_prob:
            return
        # Kill the transfer somewhere in its (uncontended-estimate) flight.
        bottleneck = min(link.capacity_mbps for link in transfer.route)
        estimate = transfer.size_mb / bottleneck
        delay = self.rng.uniform(0.1, 0.9) * estimate
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, "fault.transfer_kill",
                             src=transfer.src, dst=transfer.dst,
                             dataset=transfer.metadata.get("dataset"),
                             after_s=delay)
        self.sim.process(self._abort_later(transfer, delay),
                         name="fault:transfer-kill")

    def _abort_later(self, transfer: "Transfer", delay: float):
        yield self.sim.timeout(delay)
        self.grid.transfers.abort(transfer, reason="injected drop")

    # -- accounting ---------------------------------------------------------------

    def downtime_per_site(self, horizon: Optional[float] = None
                          ) -> Dict[str, float]:
        """Accumulated unavailable time per site over ``[0, horizon]``."""
        horizon = self.sim.now if horizon is None else horizon
        out = dict(self._downtime_s)
        for site, since in self._down_since.items():
            out[site] += max(0.0, horizon - since)
        return out

    def total_downtime_s(self, horizon: Optional[float] = None) -> float:
        """Sum of per-site downtime."""
        return sum(self.downtime_per_site(horizon).values())

"""Golden-trace digests: lock in behaviour, not just metrics.

A golden trace is the full domain-event stream of a canonical small
workload under one (ES, DS) algorithm pair, reduced to a stable digest:
the SHA-256 of the canonical JSONL bytes (see :mod:`repro.trace.jsonl`),
with :data:`~repro.trace.schema.SCHEMA_VERSION` mixed in.  Any behavioural
drift — a scheduler picking a different site, a transfer starting one
event earlier, a replication triggering at a different count — changes the
digest, so regressions fail a test instead of silently shifting averages.

Because a digest alone cannot say *where* two traces diverged, each golden
entry also stores rolling digests every :data:`CHECKPOINT_EVERY` records.
On mismatch, :func:`describe_divergence` reports the first diverging
window and prints the current records inside it — a readable
first-divergence diff without committing megabytes of trace text.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.trace import TraceRecord
from repro.trace.jsonl import dumps_record
from repro.trace.schema import SCHEMA_VERSION

#: Rolling-digest interval (records).  Small enough to localize a
#: divergence to a readable window, large enough to keep golden files tiny.
CHECKPOINT_EVERY = 64


def trace_digest(records: Sequence[TraceRecord]) -> str:
    """Stable SHA-256 over the canonical serialization of a trace."""
    return fingerprint(records)["digest"]


def fingerprint(records: Sequence[TraceRecord]) -> Dict[str, Any]:
    """Digest + rolling checkpoints for one trace.

    Returns ``{"schema": v, "count": n, "digest": hex,
    "checkpoints": [hex, ...]}`` where ``checkpoints[i]`` is the digest of
    the first ``(i + 1) * CHECKPOINT_EVERY`` records.
    """
    hasher = hashlib.sha256(f"trace-schema-v{SCHEMA_VERSION}\n".encode())
    checkpoints: List[str] = []
    count = 0
    for record in records:
        hasher.update(dumps_record(record).encode("utf-8"))
        hasher.update(b"\n")
        count += 1
        if count % CHECKPOINT_EVERY == 0:
            checkpoints.append(hasher.hexdigest())
    return {
        "schema": SCHEMA_VERSION,
        "count": count,
        "digest": hasher.hexdigest(),
        "checkpoints": checkpoints,
    }


def first_divergence(expected: Dict[str, Any],
                     records: Sequence[TraceRecord]
                     ) -> Optional[Tuple[int, int]]:
    """The first record window where ``records`` leaves the golden trace.

    Returns ``(start, end)`` record indices of the diverging window, or
    ``None`` if the trace matches the expected fingerprint exactly.
    """
    actual = fingerprint(records)
    if actual["digest"] == expected["digest"] \
            and actual["count"] == expected["count"]:
        return None
    exp_cp = expected.get("checkpoints", [])
    act_cp = actual["checkpoints"]
    for i, (exp, act) in enumerate(zip(exp_cp, act_cp)):
        if exp != act:
            return (i * CHECKPOINT_EVERY, (i + 1) * CHECKPOINT_EVERY)
    # All shared checkpoints agree: the divergence is in the tail (or the
    # traces differ only in length).
    agreed = min(len(exp_cp), len(act_cp)) * CHECKPOINT_EVERY
    return (agreed, max(actual["count"], expected["count"]))


def describe_divergence(expected: Dict[str, Any],
                        records: Sequence[TraceRecord],
                        max_lines: int = 12) -> str:
    """Human-readable first-divergence report for a failed golden check."""
    window = first_divergence(expected, records)
    if window is None:
        return "traces match"
    start, end = window
    actual = fingerprint(records)
    lines = [
        f"trace diverges from golden in records [{start}, {end}) "
        f"(golden: {expected['count']} records, digest "
        f"{expected['digest'][:12]}…; actual: {actual['count']} records, "
        f"digest {actual['digest'][:12]}…)",
        "current records at the divergence window:",
    ]
    shown = records[start:min(end, start + max_lines)]
    if not shown:
        lines.append("  (trace ends before this window — records missing)")
    for offset, record in enumerate(shown):
        lines.append(f"  #{start + offset}: {record}")
    if end - start > len(shown) and shown:
        lines.append(f"  … {end - start - len(shown)} more in window")
    lines.append(
        "if this change is intentional, regenerate with: "
        "pytest tests/trace/test_golden.py --regen-golden")
    return "\n".join(lines)


def golden_config():
    """The canonical 50-job workload every golden trace runs.

    Small enough that all 12 ES × DS combinations run in seconds, but
    configured (low popularity threshold, short DS period) so replication,
    cache reuse, and contention all actually occur and are locked in.
    """
    from repro.experiments.config import SimulationConfig

    return SimulationConfig(
        n_users=10,
        n_sites=6,
        n_datasets=24,
        n_jobs=50,
        bandwidth_mbps=10.0,
        storage_capacity_mb=20_000.0,
        popularity_threshold=2,
        ds_check_interval_s=120.0,
        seed=0,
    )


def run_golden(es_name: str, ds_name: str) -> List[TraceRecord]:
    """Run the canonical workload traced; returns the record stream."""
    from repro.experiments.runner import run_single
    from repro.sim.trace import Tracer

    tracer = Tracer()
    run_single(golden_config(), es_name, ds_name, tracer=tracer)
    return tracer.records

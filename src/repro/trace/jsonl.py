"""JSONL import/export of trace records.

One record per line, canonical form: keys sorted, no whitespace, ASCII
only.  Canonicalization matters — the golden-trace digests hash exactly
these bytes, and the determinism tests assert byte-identical files across
worker counts, so the serialization must be a pure function of the record
content (Python's ``repr``-based float formatting is deterministic).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Dict, Iterable, Iterator, List, Union

from repro.sim.trace import TraceRecord
from repro.trace.schema import dict_to_record, record_to_dict

PathOrFile = Union[str, Path, IO[str]]


def dumps_record(record: Union[TraceRecord, Dict[str, Any]]) -> str:
    """One record as its canonical JSON line (no trailing newline)."""
    if isinstance(record, TraceRecord):
        record = record_to_dict(record)
    return json.dumps(record, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True)


def dumps(records: Iterable[Union[TraceRecord, Dict[str, Any]]]) -> str:
    """A whole trace as JSONL text (one trailing newline when non-empty)."""
    lines = [dumps_record(r) for r in records]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(records: Iterable[Union[TraceRecord, Dict[str, Any]]],
                out: PathOrFile) -> int:
    """Write records to a path or open text file; returns the line count."""
    text_lines = [dumps_record(r) for r in records]
    payload = "\n".join(text_lines) + ("\n" if text_lines else "")
    if isinstance(out, (str, Path)):
        Path(out).write_text(payload)
    else:
        out.write(payload)
    return len(text_lines)


def iter_jsonl(source: PathOrFile) -> Iterator[TraceRecord]:
    """Stream records back from a JSONL path or open text file."""
    if isinstance(source, (str, Path)):
        lines = Path(source).read_text().splitlines()
    else:
        lines = source.read().splitlines()
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except ValueError as exc:
            raise ValueError(f"line {lineno}: not valid JSON: {exc}") from None
        try:
            yield dict_to_record(data)
        except ValueError as exc:
            raise ValueError(f"line {lineno}: {exc}") from None


def read_jsonl(source: PathOrFile) -> List[TraceRecord]:
    """All records from a JSONL path or open text file, in file order."""
    return list(iter_jsonl(source))

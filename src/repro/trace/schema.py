"""The versioned trace-record schema and kinds taxonomy.

Every domain emission in the simulator uses a kind from this module, so
consumers (JSONL export, golden digests, cross-validation, the ``repro
trace`` CLI) can rely on a closed vocabulary.  The JSON wire format is::

    {"v": 1, "t": <sim time>, "k": "<kind>", "d": {<detail>}}

``v`` is :data:`SCHEMA_VERSION`; bump it whenever a kind is renamed, a
detail field changes meaning, or the canonical serialization changes —
golden digests mix the version in, so old baselines invalidate loudly
instead of drifting silently.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

from repro.sim.trace import TraceRecord

#: Version of the record schema (mixed into golden digests).
SCHEMA_VERSION = 1

# ---- job lifecycle (spans reconstructed by repro.trace.summary) -----------
JOB_SUBMIT = "job.submit"          #: user handed the job to the ES
JOB_DISPATCH = "job.dispatch"      #: ES assigned an execution site
JOB_QUEUE = "job.queue"            #: job arrived at the site queue
JOB_DATA_READY = "job.data_ready"  #: all inputs local and pinned
JOB_START = "job.start"            #: compute phase started
JOB_FINISH = "job.finish"          #: job completed
JOB_RETRY = "job.retry"            #: killed attempt rewound for re-dispatch
JOB_REDIRECT = "job.redirect"      #: ES choice was down; rerouted
JOB_FAIL = "job.fail"              #: retry budget exhausted; gave up
JOB_MISDIRECTED = "job.misdirected"  #: promised replica missing at hand-off
JOB_BOUNCED = "job.bounced"        #: misdirected job re-dispatched by the ES
JOB_SHED = "job.shed"              #: refused admission (queues saturated)
JOB_DEFLECTED = "job.deflected"    #: aimed at a full queue; re-placed
JOB_EXPIRED = "job.expired"        #: queue deadline passed before running
JOB_SPECULATED = "job.speculated"  #: backup attempt launched for a straggler
JOB_PREEMPTED_LOSER = "job.preempted_loser"  #: lost a speculation race

# ---- scheduler decisions ---------------------------------------------------
ES_DECISION = "es.decision"        #: site choice + per-candidate scores
ES_DEGRADED = "es.degraded"        #: placement fell back to degraded mode
LS_PICK = "ls.pick"                #: dispatch-mode local scheduler pick
DS_DECISION = "ds.decision"        #: replication trigger (popularity counts)
DS_DELETE = "ds.delete"            #: idle-replica deletion

# ---- data movement ---------------------------------------------------------
FETCH_HIT = "fetch.hit"            #: dataset already local (no traffic)
FETCH_JOIN = "fetch.join"          #: joined an in-flight transfer
FETCH_REMOTE = "fetch.remote"      #: degraded to a streaming remote read
TRANSFER_START = "transfer.start"  #: bytes started crossing the network
TRANSFER_DONE = "transfer.done"    #: last byte arrived
TRANSFER_ABORT = "transfer.abort"  #: transfer killed mid-flight
TRANSFER_RETRY = "transfer.retry"  #: fault-mode fetch retry / failover
REPLICATE_SKIP = "replicate.skip"  #: DS push skipped (present/full/racing)
REPLICATE_DONE = "replicate.done"  #: DS push landed a new replica

# ---- replica catalog -------------------------------------------------------
CATALOG_REGISTER = "catalog.register"
CATALOG_DEREGISTER = "catalog.deregister"

# ---- fault injection -------------------------------------------------------
FAULT_SITE_DOWN = "fault.site_down"
FAULT_SITE_UP = "fault.site_up"
FAULT_LINK_DEGRADE = "fault.link_degrade"
FAULT_LINK_RESTORE = "fault.link_restore"
FAULT_TRANSFER_KILL = "fault.transfer_kill"
FAULT_PARTITION = "fault.partition"           #: site set cut off the network
FAULT_PARTITION_HEAL = "fault.partition_heal"  #: partition window ended

# ---- observed health (failure detector + circuit breakers) -----------------
HEALTH_SUSPECT = "health.suspect"  #: detector raised suspicion (phi trip)
HEALTH_TRIP = "health.trip"        #: a breaker opened (site or link)
HEALTH_PROBE = "health.probe"      #: half-open probe attempt + outcome
HEALTH_RESTORE = "health.restore"  #: breaker closed; target re-admitted

# ---- data durability (corruption, scrubbing, repair) -----------------------
REPLICA_CORRUPTED = "replica.corrupted"    #: silent corruption injected
REPLICA_LOST = "replica.lost"              #: explicit loss event applied
REPLICA_QUARANTINED = "replica.quarantined"  #: corrupt copy detected+removed
SCRUB_PASS = "scrub.pass"                  #: one background sweep completed
REPAIR_START = "repair.start"              #: repair copy attempt launched
REPAIR_DONE = "repair.done"                #: repair copy landed
DATASET_LOST = "dataset.lost"              #: last replica gone (final)
JOB_ABANDONED_DATA_LOST = "job.abandoned_data_lost"  #: terminal edge taken

# ---- stale information -----------------------------------------------------
INFO_STALE_READ = "info.stale_read"  #: query answered differently from truth

# ---- invariant watchdog ----------------------------------------------------
WATCHDOG_CHECK = "watchdog.check"  #: one clean audit round completed

# ---- kernel (opt-in via Tracer.attach_kernel) ------------------------------
KERNEL_EVENT = "kernel.event"

#: Every domain kind, grouped by prefix for CLI filtering.
KIND_GROUPS: Dict[str, Tuple[str, ...]] = {
    "job": (JOB_SUBMIT, JOB_DISPATCH, JOB_QUEUE, JOB_DATA_READY, JOB_START,
            JOB_FINISH, JOB_RETRY, JOB_REDIRECT, JOB_FAIL, JOB_MISDIRECTED,
            JOB_BOUNCED, JOB_SHED, JOB_DEFLECTED, JOB_EXPIRED,
            JOB_SPECULATED, JOB_PREEMPTED_LOSER, JOB_ABANDONED_DATA_LOST),
    "es": (ES_DECISION, ES_DEGRADED),
    "ls": (LS_PICK,),
    "ds": (DS_DECISION, DS_DELETE),
    "fetch": (FETCH_HIT, FETCH_JOIN, FETCH_REMOTE),
    "transfer": (TRANSFER_START, TRANSFER_DONE, TRANSFER_ABORT,
                 TRANSFER_RETRY),
    "replicate": (REPLICATE_SKIP, REPLICATE_DONE),
    "catalog": (CATALOG_REGISTER, CATALOG_DEREGISTER),
    "fault": (FAULT_SITE_DOWN, FAULT_SITE_UP, FAULT_LINK_DEGRADE,
              FAULT_LINK_RESTORE, FAULT_TRANSFER_KILL, FAULT_PARTITION,
              FAULT_PARTITION_HEAL),
    "health": (HEALTH_SUSPECT, HEALTH_TRIP, HEALTH_PROBE, HEALTH_RESTORE),
    "replica": (REPLICA_CORRUPTED, REPLICA_LOST, REPLICA_QUARANTINED),
    "scrub": (SCRUB_PASS,),
    "repair": (REPAIR_START, REPAIR_DONE),
    "dataset": (DATASET_LOST,),
    "info": (INFO_STALE_READ,),
    "watchdog": (WATCHDOG_CHECK,),
    "kernel": (KERNEL_EVENT,),
}

#: Flat tuple of every known kind.
ALL_KINDS: Tuple[str, ...] = tuple(
    kind for kinds in KIND_GROUPS.values() for kind in kinds)


def expand_kinds(names: Iterable[str]) -> Tuple[str, ...]:
    """Resolve a mix of exact kinds and group prefixes to concrete kinds.

    ``expand_kinds(["job", "transfer.done"])`` yields every ``job.*`` kind
    plus ``transfer.done``.  Unknown names raise ``ValueError`` so typos in
    ``--trace-kinds`` fail fast instead of silently filtering everything.
    """
    out = []
    for name in names:
        if name in KIND_GROUPS:
            out.extend(KIND_GROUPS[name])
        elif name in ALL_KINDS:
            out.append(name)
        else:
            raise ValueError(
                f"unknown trace kind {name!r}; known kinds: "
                f"{sorted(ALL_KINDS)} and groups {sorted(KIND_GROUPS)}")
    # Stable de-dup, preserving first-mention order.
    seen = set()
    unique = [k for k in out if not (k in seen or seen.add(k))]
    return tuple(unique)


def record_to_dict(record: TraceRecord) -> Dict[str, Any]:
    """The JSON wire form of one record."""
    return {"v": SCHEMA_VERSION, "t": record.time, "k": record.kind,
            "d": dict(record.detail)}


def dict_to_record(data: Dict[str, Any]) -> TraceRecord:
    """Parse the JSON wire form back into a :class:`TraceRecord`.

    Raises ``ValueError`` on malformed or wrong-version input.
    """
    validate_dict(data)
    return TraceRecord(time=float(data["t"]), kind=data["k"],
                       detail=dict(data["d"]))


def validate_dict(data: Dict[str, Any],
                  known_kinds_only: bool = False) -> None:
    """Check one wire-form dict against the schema (raises ValueError)."""
    if not isinstance(data, dict):
        raise ValueError(f"trace record must be an object, got {data!r}")
    missing = {"v", "t", "k", "d"} - set(data)
    if missing:
        raise ValueError(f"trace record missing fields {sorted(missing)}")
    if data["v"] != SCHEMA_VERSION:
        raise ValueError(
            f"trace record schema v{data['v']} != supported "
            f"v{SCHEMA_VERSION}")
    if not isinstance(data["t"], (int, float)):
        raise ValueError(f"trace time must be numeric, got {data['t']!r}")
    if not isinstance(data["k"], str):
        raise ValueError(f"trace kind must be a string, got {data['k']!r}")
    if not isinstance(data["d"], dict):
        raise ValueError(f"trace detail must be an object, got {data['d']!r}")
    if known_kinds_only and data["k"] not in ALL_KINDS:
        raise ValueError(f"unknown trace kind {data['k']!r}")


def job_id_of(record: TraceRecord) -> Optional[int]:
    """The job id a record concerns, or None for non-job records."""
    return record.detail.get("job")

"""Structured domain-event tracing for simulation runs.

Built on the kernel :class:`~repro.sim.trace.Tracer`: the grid, sites,
data mover, transfer manager, replica catalog, schedulers, and fault
injector all emit schema'd records (see :mod:`repro.trace.schema`) when a
tracer is wired in via ``DataGrid.create(..., tracer=...)`` — and pay a
single ``is None`` attribute check when it is not.

Sub-modules:

* :mod:`repro.trace.schema` — versioned record schema + kinds taxonomy.
* :mod:`repro.trace.jsonl` — canonical JSONL export/import.
* :mod:`repro.trace.golden` — golden-trace digests and divergence diffs.
* :mod:`repro.trace.summary` — per-job timeline reconstruction.
* :mod:`repro.trace.crossval` — exact cross-validation against RunMetrics.
"""

from repro.sim.trace import NullTracer, TraceRecord, Tracer
from repro.trace.crossval import TraceCounters, counters_from_trace, mismatches
from repro.trace.golden import (
    describe_divergence,
    fingerprint,
    first_divergence,
    golden_config,
    run_golden,
    trace_digest,
)
from repro.trace.jsonl import dumps_record, read_jsonl, write_jsonl
from repro.trace.schema import (
    ALL_KINDS,
    KIND_GROUPS,
    SCHEMA_VERSION,
    dict_to_record,
    expand_kinds,
    record_to_dict,
)
from repro.trace.summary import (
    count_by_kind,
    format_timelines,
    job_timelines,
)

__all__ = [
    "ALL_KINDS",
    "KIND_GROUPS",
    "NullTracer",
    "SCHEMA_VERSION",
    "TraceCounters",
    "TraceRecord",
    "Tracer",
    "count_by_kind",
    "counters_from_trace",
    "describe_divergence",
    "dict_to_record",
    "dumps_record",
    "expand_kinds",
    "fingerprint",
    "first_divergence",
    "format_timelines",
    "golden_config",
    "job_timelines",
    "mismatches",
    "read_jsonl",
    "record_to_dict",
    "run_golden",
    "trace_digest",
    "write_jsonl",
]

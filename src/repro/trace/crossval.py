"""Cross-validation of :class:`~repro.metrics.collector.RunMetrics`
against the trace stream.

The metrics layer and the trace layer observe the same run through
independent code paths; recomputing the headline counters from the trace
and demanding *exact* agreement catches either layer silently drifting —
a dropped emission, a double-counted transfer, a metrics field fed from
the wrong source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

from repro.metrics.collector import RunMetrics
from repro.sim.trace import TraceRecord
from repro.trace import schema


@dataclass(frozen=True)
class TraceCounters:
    """Counters recomputed purely from a trace stream."""

    jobs_completed: int
    jobs_failed: int
    jobs_retried: int
    jobs_redirected: int
    fetch_traffic_mb: float
    replication_traffic_mb: float
    replications_done: int
    transfers_failed: int
    failovers: int
    outages: int
    misdirected_jobs: int
    bounced_jobs: int
    jobs_shed: int
    jobs_deflected: int
    jobs_expired: int
    suspicions: int
    breaker_trips: int
    breaker_restores: int
    health_probes: int
    speculative_launched: int
    speculative_losers: int
    replicas_corrupted: int
    replicas_quarantined: int
    replicas_repaired: int
    datasets_lost: int
    jobs_abandoned_data_lost: int
    repair_traffic_mb: float


def counters_from_trace(records: Sequence[TraceRecord]) -> TraceCounters:
    """Fold a record stream into :class:`TraceCounters`.

    Traffic is summed in record order, which matches the completion order
    the metrics layer sums in — so agreement is exact float equality, not
    approximate.
    """
    jobs_completed = jobs_failed = jobs_retried = jobs_redirected = 0
    fetch_mb = replication_mb = 0.0
    replications_done = transfers_failed = failovers = outages = 0
    misdirected_jobs = bounced_jobs = 0
    jobs_shed = jobs_deflected = jobs_expired = 0
    suspicions = breaker_trips = breaker_restores = health_probes = 0
    speculative_launched = speculative_losers = 0
    replicas_corrupted = replicas_quarantined = replicas_repaired = 0
    datasets_lost = jobs_abandoned = 0
    repair_mb = 0.0
    for record in records:
        kind = record.kind
        if kind == schema.JOB_FINISH:
            jobs_completed += 1
        elif kind == schema.JOB_FAIL:
            jobs_failed += 1
        elif kind == schema.JOB_RETRY:
            jobs_retried += 1
        elif kind == schema.JOB_REDIRECT:
            jobs_redirected += 1
        elif kind == schema.TRANSFER_DONE:
            purpose = record.detail.get("purpose")
            if purpose == "job-fetch":
                fetch_mb += record.detail["size_mb"]
            elif purpose == "replication":
                replication_mb += record.detail["size_mb"]
            elif purpose == "repair":
                repair_mb += record.detail["size_mb"]
        elif kind == schema.REPLICATE_DONE:
            replications_done += 1
        elif kind == schema.TRANSFER_RETRY:
            transfers_failed += 1
            if record.detail.get("retry"):
                failovers += 1
        elif kind == schema.FAULT_SITE_DOWN:
            outages += 1
        elif kind == schema.JOB_MISDIRECTED:
            misdirected_jobs += 1
        elif kind == schema.JOB_BOUNCED:
            bounced_jobs += 1
        elif kind == schema.JOB_SHED:
            jobs_shed += 1
        elif kind == schema.JOB_DEFLECTED:
            jobs_deflected += 1
        elif kind == schema.JOB_EXPIRED:
            jobs_expired += 1
        elif kind == schema.HEALTH_SUSPECT:
            suspicions += 1
        elif kind == schema.HEALTH_TRIP:
            breaker_trips += 1
        elif kind == schema.HEALTH_RESTORE:
            breaker_restores += 1
        elif kind == schema.HEALTH_PROBE:
            health_probes += 1
        elif kind == schema.JOB_SPECULATED:
            speculative_launched += 1
        elif kind == schema.JOB_PREEMPTED_LOSER:
            speculative_losers += 1
        elif kind == schema.REPLICA_CORRUPTED:
            replicas_corrupted += 1
        elif kind == schema.REPLICA_QUARANTINED:
            replicas_quarantined += 1
        elif kind == schema.REPAIR_DONE:
            replicas_repaired += 1
        elif kind == schema.DATASET_LOST:
            datasets_lost += 1
        elif kind == schema.JOB_ABANDONED_DATA_LOST:
            jobs_abandoned += 1
    return TraceCounters(
        jobs_completed=jobs_completed,
        jobs_failed=jobs_failed,
        jobs_retried=jobs_retried,
        jobs_redirected=jobs_redirected,
        fetch_traffic_mb=fetch_mb,
        replication_traffic_mb=replication_mb,
        replications_done=replications_done,
        transfers_failed=transfers_failed,
        failovers=failovers,
        outages=outages,
        misdirected_jobs=misdirected_jobs,
        bounced_jobs=bounced_jobs,
        jobs_shed=jobs_shed,
        jobs_deflected=jobs_deflected,
        jobs_expired=jobs_expired,
        suspicions=suspicions,
        breaker_trips=breaker_trips,
        breaker_restores=breaker_restores,
        health_probes=health_probes,
        speculative_launched=speculative_launched,
        speculative_losers=speculative_losers,
        replicas_corrupted=replicas_corrupted,
        replicas_quarantined=replicas_quarantined,
        replicas_repaired=replicas_repaired,
        datasets_lost=datasets_lost,
        jobs_abandoned_data_lost=jobs_abandoned,
        repair_traffic_mb=repair_mb,
    )


#: trace counter field → RunMetrics field it must equal exactly.
_FIELD_MAP = {
    "jobs_completed": "n_jobs",
    "jobs_failed": "jobs_failed",
    "jobs_retried": "jobs_retried",
    "jobs_redirected": "jobs_redirected",
    "fetch_traffic_mb": "fetch_traffic_mb",
    "replication_traffic_mb": "replication_traffic_mb",
    "replications_done": "replications_done",
    "transfers_failed": "transfers_failed",
    "failovers": "failovers",
    "outages": "outages",
    "misdirected_jobs": "misdirected_jobs",
    "bounced_jobs": "bounced_jobs",
    "jobs_shed": "jobs_shed",
    "jobs_deflected": "jobs_deflected",
    "jobs_expired": "jobs_expired",
    "suspicions": "suspicions",
    "breaker_trips": "breaker_trips",
    "breaker_restores": "breaker_restores",
    "health_probes": "health_probes",
    "speculative_launched": "speculative_launched",
    "speculative_losers": "speculative_losers",
    "replicas_corrupted": "replicas_corrupted",
    "replicas_quarantined": "replicas_quarantined",
    "replicas_repaired": "replicas_repaired",
    "datasets_lost": "datasets_lost",
    "jobs_abandoned_data_lost": "jobs_abandoned_data_lost",
    "repair_traffic_mb": "repair_bytes_mb",
}


def mismatches(records: Sequence[TraceRecord],
               metrics: RunMetrics) -> Dict[str, Any]:
    """Every counter where trace and metrics disagree (empty = agreement).

    Returns ``{field: (trace_value, metrics_value)}``; equality is exact
    (integers and same-order float sums), never approximate.
    """
    counters = counters_from_trace(records)
    out: Dict[str, Any] = {}
    for trace_field, metrics_field in _FIELD_MAP.items():
        trace_value = getattr(counters, trace_field)
        metrics_value = getattr(metrics, metrics_field)
        if trace_value != metrics_value:
            out[metrics_field] = (trace_value, metrics_value)
    return out


def dag_violations(records: Sequence[TraceRecord]) -> List[str]:
    """Dependency-order violations observed in a trace (empty = clean).

    Reconstructs the DAG from the ``deps`` field of ``job.submit``
    records and checks, by record order, that no child is *dispatched*
    before every parent's ``job.finish`` — the external observer's view
    of the driver's release rule.  Parents that never finish must leave
    their descendants undispatched (they are abandoned instead).
    """
    deps: Dict[int, List[int]] = {}
    finished_at: Dict[int, int] = {}
    dispatched_at: Dict[int, int] = {}
    for index, record in enumerate(records):
        kind = record.kind
        if kind == schema.JOB_SUBMIT:
            job_deps = record.detail.get("deps")
            if job_deps:
                deps[record.detail["job"]] = list(job_deps)
        elif kind == schema.JOB_FINISH:
            finished_at.setdefault(record.detail["job"], index)
        elif kind == schema.JOB_DISPATCH:
            dispatched_at.setdefault(record.detail["job"], index)
    violations: List[str] = []
    for child, parents in sorted(deps.items()):
        child_index = dispatched_at.get(child)
        if child_index is None:
            continue  # never dispatched (e.g. abandoned) — trivially fine
        for parent in parents:
            parent_index = finished_at.get(parent)
            if parent_index is None:
                violations.append(
                    f"job {child} dispatched but parent {parent} never "
                    "finished")
            elif parent_index > child_index:
                violations.append(
                    f"job {child} dispatched (record {child_index}) before "
                    f"parent {parent} finished (record {parent_index})")
    return violations

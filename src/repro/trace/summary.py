"""Per-job timeline reconstruction from a trace stream.

The ``repro trace summarize`` view: fold the flat record stream back into
one timeline per job (submit → dispatch → queue → data-ready → start →
finish, plus retries/redirects under faults), with the derived waits the
paper's §5.2 decomposition cares about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sim.trace import TraceRecord
from repro.trace import schema


@dataclass
class JobTimeline:
    """Reconstructed lifecycle of one job."""

    job_id: int
    events: List[TraceRecord] = field(default_factory=list)

    def _first(self, kind: str) -> Optional[TraceRecord]:
        for record in self.events:
            if record.kind == kind:
                return record
        return None

    def _last(self, kind: str) -> Optional[TraceRecord]:
        found = None
        for record in self.events:
            if record.kind == kind:
                found = record
        return found

    def time_of(self, kind: str) -> Optional[float]:
        """Time of the first event of a kind (None if absent)."""
        record = self._first(kind)
        return record.time if record else None

    @property
    def site(self) -> Optional[str]:
        record = self._last(schema.JOB_DISPATCH)
        return record.detail.get("site") if record else None

    @property
    def retries(self) -> int:
        return sum(1 for r in self.events if r.kind == schema.JOB_RETRY)

    @property
    def completed(self) -> bool:
        return self._first(schema.JOB_FINISH) is not None

    @property
    def failed(self) -> bool:
        return self._first(schema.JOB_FAIL) is not None

    @property
    def response_time(self) -> Optional[float]:
        submit = self.time_of(schema.JOB_SUBMIT)
        finish = self.time_of(schema.JOB_FINISH)
        if submit is None or finish is None:
            return None
        return finish - submit

    @property
    def data_wait(self) -> Optional[float]:
        """Data wait after the last (successful-attempt) queue entry."""
        ready = self._last(schema.JOB_DATA_READY)
        queued = self._last(schema.JOB_QUEUE)
        if ready is None or queued is None:
            return None
        return ready.time - queued.time

    @property
    def compute_time(self) -> Optional[float]:
        start = self._last(schema.JOB_START)
        finish = self._first(schema.JOB_FINISH)
        if start is None or finish is None:
            return None
        return finish.time - start.time


def job_timelines(records: Sequence[TraceRecord]) -> Dict[int, JobTimeline]:
    """Group job-lifecycle records by job id, in submission order."""
    timelines: Dict[int, JobTimeline] = {}
    for record in records:
        job_id = schema.job_id_of(record)
        if job_id is None:
            continue
        timeline = timelines.get(job_id)
        if timeline is None:
            timeline = timelines[job_id] = JobTimeline(job_id)
        timeline.events.append(record)
    return timelines


def count_by_kind(records: Sequence[TraceRecord]) -> Dict[str, int]:
    """Record counts per kind, sorted by kind name."""
    counts: Dict[str, int] = {}
    for record in records:
        counts[record.kind] = counts.get(record.kind, 0) + 1
    return dict(sorted(counts.items()))


def _fmt(value: Optional[float]) -> str:
    return f"{value:10.1f}" if value is not None else " " * 9 + "-"


def format_timelines(records: Sequence[TraceRecord],
                     limit: Optional[int] = None) -> str:
    """Render per-job timelines plus a kind census as a text report."""
    timelines = job_timelines(records)
    lines = [
        f"{len(records)} trace records, {len(timelines)} jobs",
        "",
        f"{'job':>6} {'site':<10} {'submit':>10} {'start':>10} "
        f"{'finish':>10} {'response':>10} {'data wait':>10} "
        f"{'retries':>8} status",
    ]
    shown = list(timelines.values())
    truncated = 0
    if limit is not None and len(shown) > limit:
        truncated = len(shown) - limit
        shown = shown[:limit]
    for tl in shown:
        status = "completed" if tl.completed else (
            "FAILED" if tl.failed else "incomplete")
        lines.append(
            f"{tl.job_id:>6} {tl.site or '-':<10} "
            f"{_fmt(tl.time_of(schema.JOB_SUBMIT))} "
            f"{_fmt(tl.time_of(schema.JOB_START))} "
            f"{_fmt(tl.time_of(schema.JOB_FINISH))} "
            f"{_fmt(tl.response_time)} {_fmt(tl.data_wait)} "
            f"{tl.retries:>8} {status}")
    if truncated:
        lines.append(f"… {truncated} more jobs (raise the limit to see all)")
    lines.append("")
    lines.append("records by kind:")
    for kind, count in count_by_kind(records).items():
        lines.append(f"  {kind:<24} {count:>8}")
    return "\n".join(lines)

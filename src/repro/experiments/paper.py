"""Entry points that regenerate each figure and table of the paper's §5.

Every function returns plain data structures (and the benchmarks print
them), so results can be compared against the published figures:

* :func:`table1_parameters` — Table 1.
* :func:`reproduce_figure2` — the dataset-popularity histogram.
* :func:`reproduce_figure3_and_4` — the 4×3 matrix behind Figures 3a
  (response time), 3b (data transferred/job), and 4 (processor idle %).
* :func:`reproduce_figure5` — response time per ES at 10 vs 100 MB/s with
  DS = DataLeastLoaded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.config import (
    SCENARIO_1_BANDWIDTH,
    SCENARIO_2_BANDWIDTH,
    SimulationConfig,
)
from repro.experiments.runner import MatrixResult, make_workload, run_matrix
from repro.scheduling.registry import ALL_DS, ALL_ES


def table1_parameters(config: SimulationConfig = None) -> Dict[str, str]:
    """Table 1: the simulation parameters used in the study."""
    if config is None:
        config = SimulationConfig.paper()
    return config.table1()


def reproduce_figure2(
    config: SimulationConfig = None,
    seed: int = 0,
    top_n: int = 60,
) -> List[Tuple[str, int]]:
    """Figure 2: requests per dataset under the geometric distribution.

    Returns (dataset name, request count) for the ``top_n`` most requested
    datasets, most popular first — the paper plots 60 of its 200.
    """
    if config is None:
        config = SimulationConfig.paper()
    workload = make_workload(config, seed)
    counts = workload.request_counts()
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:top_n]


@dataclass
class Figure345Result:
    """The full §5.3 result set (Figures 3a, 3b, and 4 share one sweep)."""

    matrix: MatrixResult

    def figure3a(self) -> Dict[Tuple[str, str], float]:
        """Average response time per job (seconds), ES × DS."""
        return self.matrix.metric_matrix("avg_response_time_s")

    def figure3b(self) -> Dict[Tuple[str, str], float]:
        """Average data transferred per job (MB), ES × DS."""
        return self.matrix.metric_matrix("avg_data_transferred_mb")

    def figure4(self) -> Dict[Tuple[str, str], float]:
        """Average processor idle time (percent), ES × DS."""
        return self.matrix.metric_matrix("idle_percent")


def reproduce_figure3_and_4(
    config: SimulationConfig = None,
    seeds: Sequence[int] = (0, 1, 2),
    jobs: int = 1,
    cache_dir=None,
) -> Figure345Result:
    """Run the 12-combination sweep behind Figures 3a, 3b, and 4.

    Results are "the average over the three experiments performed for each
    algorithm pair" (§5.3).  ``jobs``/``cache_dir`` fan the 36 runs out
    over worker processes and reuse cached results, exactly as in
    :func:`~repro.experiments.runner.run_matrix`.
    """
    if config is None:
        config = SimulationConfig.paper()
    return Figure345Result(
        run_matrix(config, ALL_ES, ALL_DS, seeds,
                   jobs=jobs, cache_dir=cache_dir))


def reproduce_figure5(
    config: SimulationConfig = None,
    seeds: Sequence[int] = (0, 1, 2),
    ds_name: str = "DataLeastLoaded",
    jobs: int = 1,
    cache_dir=None,
) -> Dict[str, Dict[str, float]]:
    """Figure 5: response times for the two bandwidth scenarios.

    Returns ``{"10MB/sec": {es: seconds}, "100MB/sec": {es: seconds}}``
    using the replication algorithm the paper's caption specifies
    (DataLeastLoaded).
    """
    if config is None:
        config = SimulationConfig.paper()
    out: Dict[str, Dict[str, float]] = {}
    for bandwidth in (SCENARIO_1_BANDWIDTH, SCENARIO_2_BANDWIDTH):
        scenario = config.with_(bandwidth_mbps=bandwidth)
        matrix = run_matrix(scenario, ALL_ES, [ds_name], seeds,
                            jobs=jobs, cache_dir=cache_dir)
        response = matrix.metric_matrix("avg_response_time_s")
        out[f"{bandwidth:g}MB/sec"] = {
            es: response[(es, ds_name)] for es in ALL_ES
        }
    return out


#: The qualitative claims of §5.3/§5.4 that a faithful reproduction must
#: exhibit; tests/integration/test_paper_claims.py asserts each of these.
PAPER_CLAIMS = (
    "C1: without replication, JobLocal beats JobDataPresent on response time",
    "C2: with replication, JobDataPresent has the best response time of all "
    "ES algorithms, and beats the best no-replication configuration",
    "C3: JobDataPresent transfers far less data per job than every other ES",
    "C4: replication does not improve JobRandom/JobLeastLoaded/JobLocal "
    "response times (same or worse)",
    "C5: DataRandom and DataLeastLoaded perform about the same",
    "C6: at 10x bandwidth, JobLocal's response time is within a small "
    "factor of JobDataPresent's (no clear winner)",
)

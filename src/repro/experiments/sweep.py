"""Generic parameter sweeps.

The paper's Figure 5 is a two-point bandwidth sweep; the ablation benches
sweep storage, staleness, thresholds...  :func:`sweep` generalizes the
pattern: vary one ``SimulationConfig`` field across values for a fixed
algorithm pair, with seed replication and paired workloads, and return a
result object that yields metric series ready for tabulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.config import SimulationConfig
from repro.experiments.parallel import ParallelRunner, RunSpec
from repro.metrics.collector import RunMetrics
from repro.metrics.summary import MetricSummary


@dataclass
class SweepResult:
    """Results of varying one config field."""

    parameter: str
    values: Tuple[Any, ...]
    es_name: str
    ds_name: str
    seeds: Tuple[int, ...]
    #: value → per-seed metrics.
    runs: Dict[Any, List[RunMetrics]] = field(default_factory=dict)

    def series(self, metric: str) -> List[float]:
        """Mean of ``metric`` at each swept value, in sweep order."""
        out = []
        for value in self.values:
            runs = self.runs[value]
            out.append(
                sum(float(getattr(m, metric)) for m in runs) / len(runs))
        return out

    def summary(self, value: Any, metric: str) -> MetricSummary:
        """Cross-seed summary of one metric at one swept value."""
        return MetricSummary.of(
            [float(getattr(m, metric)) for m in self.runs[value]])

    def best_value(self, metric: str = "avg_response_time_s",
                   minimize: bool = True) -> Any:
        """The swept value optimizing a metric."""
        series = self.series(metric)
        pick = min if minimize else max
        index = series.index(pick(series))
        return self.values[index]

    def table(self, metrics: Sequence[str] = (
            "avg_response_time_s", "avg_data_transferred_mb",
            "idle_fraction")) -> str:
        """ASCII table: one row per swept value."""
        header = f"{self.parameter:>20}" + "".join(
            f"{m:>26}" for m in metrics)
        lines = [f"sweep of {self.parameter} "
                 f"({self.es_name} + {self.ds_name}, "
                 f"{len(self.seeds)} seed(s))",
                 header]
        for value in self.values:
            row = f"{value!s:>20}"
            for metric in metrics:
                row += f"{self.summary(value, metric).mean:>26.2f}"
            lines.append(row)
        return "\n".join(lines)


def sweep(
    config: SimulationConfig,
    parameter: str,
    values: Sequence[Any],
    es_name: str = "JobDataPresent",
    ds_name: str = "DataRandom",
    seeds: Sequence[int] = (0,),
    jobs: Optional[int] = 1,
    cache_dir: Optional[Union[str, Path]] = None,
) -> SweepResult:
    """Run ``es_name``/``ds_name`` at every value of one config field.

    ``parameter`` must be a ``SimulationConfig`` field name; each run uses
    ``config.with_(parameter=value)``.  Workload-shaping parameters (jobs,
    datasets, popularity, ...) naturally regenerate the workload; for
    purely environmental parameters (bandwidth, storage, staleness) the
    workload stays identical across values, giving paired comparisons.

    ``jobs`` fans the (value × seed) grid out over worker processes
    (1 = serial; None/0 = all cores) with results merged back in sweep
    order, and ``cache_dir`` enables the on-disk result cache — both as
    in :func:`~repro.experiments.runner.run_matrix`.
    """
    if not values:
        raise ValueError("no sweep values given")
    if parameter not in SimulationConfig.__dataclass_fields__:
        raise ValueError(
            f"{parameter!r} is not a SimulationConfig field")
    result = SweepResult(
        parameter=parameter,
        values=tuple(values),
        es_name=es_name,
        ds_name=ds_name,
        seeds=tuple(seeds),
    )
    seeds = tuple(seeds)
    specs = [
        RunSpec(config.with_(**{parameter: value}), es_name, ds_name, seed)
        for value in values
        for seed in seeds
    ]
    runner = ParallelRunner(jobs=jobs, cache_dir=cache_dir)
    metrics = runner.map(specs)
    for index, value in enumerate(values):
        result.runs[value] = metrics[
            index * len(seeds):(index + 1) * len(seeds)]
    return result

"""Simulation configuration.

:meth:`SimulationConfig.paper` encodes Table 1 of the paper verbatim:

====================================  =========================
Total number of users                 120
Number of sites                       30
Compute elements/site                 2–5
Total number of datasets              200
Connectivity bandwidth                10 MB/s (scenario 1),
                                      100 MB/s (scenario 2)
Size of workload                      6000 jobs
====================================  =========================

plus the §5.1 workload constants (dataset sizes uniform 500 MB–2 GB,
runtime 300 s/GB, single input file, geometric popularity).  Parameters the
paper leaves unstated (storage capacity, replication threshold/period,
geometric ``p``, topology branching) are explicit fields with documented
defaults, so every assumption is visible and sweepable.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional

from repro.faults.plan import FaultPlan

#: Table 1 bandwidth scenarios, MB/s.
SCENARIO_1_BANDWIDTH = 10.0
SCENARIO_2_BANDWIDTH = 100.0


@dataclass(frozen=True)
class SimulationConfig:
    """All knobs for one simulated Data Grid execution."""

    # ---- Table 1 ----------------------------------------------------------
    n_users: int = 120
    n_sites: int = 30
    min_processors_per_site: int = 2
    max_processors_per_site: int = 5
    n_datasets: int = 200
    bandwidth_mbps: float = SCENARIO_1_BANDWIDTH
    n_jobs: int = 6000

    # ---- §5.1 workload constants ------------------------------------------
    min_dataset_mb: float = 500.0
    max_dataset_mb: float = 2000.0
    compute_seconds_per_gb: float = 300.0
    inputs_per_job: int = 1
    #: Output size as a fraction of input size (paper: 0 — "we ignore
    #: output costs"; positive values enable the output-storage extension).
    output_fraction: float = 0.0
    popularity_model: str = "geometric"
    #: Geometric skew.  Unpublished in the paper; 0.05 (hottest dataset gets
    #: ~5% of all requests) reproduces the published orderings, notably the
    #: hotspot overload that makes JobDataPresent worst without replication.
    geometric_p: float = 0.05
    zipf_alpha: float = 1.0

    # ---- Unstated-in-paper modelling knobs ---------------------------------
    #: Per-site storage (MB).  50 GB holds ~40 average datasets — finite, so
    #: LRU matters, but large enough that replication is useful.
    storage_capacity_mb: float = 50_000.0
    #: Topology family: "hierarchical" (paper), "star", "ring", "random".
    topology: str = "hierarchical"
    #: Leaf sites per regional center in the hierarchical topology.
    branching: int = 6
    #: Dataset Scheduler popularity threshold (accesses since last check).
    popularity_threshold: int = 5
    #: Dataset Scheduler loop period (s).
    ds_check_interval_s: float = 300.0
    #: If > 0, the DS also deletes unpinned replicas idle at least this
    #: long (the §3 "delete local files" responsibility; 0 = off, LRU
    #: eviction alone manages space — the paper's setup).
    ds_delete_idle_after_s: float = 0.0
    #: "Neighbors" radius for DataLeastLoaded (hops).  4 reaches every site
    #: in the paper's hierarchical topology, making DataLeastLoaded a
    #: load-aware variant of DataRandom — which is what reproduces the
    #: paper's "no significant difference between the two" finding.
    neighbor_hops: int = 4
    #: Local scheduler name (paper: FIFO).
    local_scheduler: str = "FIFO"
    #: Information-service staleness.  The paper's schedulers consult
    #: MDS/NWS-style services, which serve *cached* values; 300 s of lag
    #: (typical MDS cache TTL of the era) reproduces the mild herding that
    #: keeps JobLeastLoaded from beating JobLocal without replication.
    #: Set to 0 for a perfectly live oracle.
    info_refresh_interval_s: float = 300.0
    #: Replica-catalog propagation delay (s).  0 = schedulers see the
    #: live catalog (the paper's perfect oracle); > 0 routes their
    #: replica queries through a bounded-staleness view that sees
    #: registrations/evictions this many seconds late, enabling
    #: misdirected-job detection and bounce recovery.
    catalog_delay_s: float = 0.0
    #: Info-query timeout fallback (s).  0 = off; > 0 lets a site marked
    #: stale serve its last-known load for up to this long before the
    #: service falls through to a fresh read.
    info_timeout_s: float = 0.0
    #: Runtime invariant watchdog (:mod:`repro.watchdog`).  Off by
    #: default; the checks are read-only, so enabling it never changes a
    #: run's results — it only turns silent conservation bugs into
    #: immediate structured failures.
    watchdog: bool = False
    #: Transfer rate allocator: "equal-share" (paper) or "max-min".
    allocator: str = "equal-share"

    # ---- Fault injection ------------------------------------------------------
    #: Optional fault plan.  ``None`` (or a null plan) keeps every code
    #: path bitwise-identical to a fault-free build; any non-null plan
    #: installs the :mod:`repro.faults` injector.  Part of the frozen,
    #: hashable config, so faulty runs participate in the parallel
    #: runner's cache keys and stay reproducible at any worker count.
    fault_plan: Optional[FaultPlan] = None

    # ---- Overload protection ---------------------------------------------------
    #: Per-site waiting-job capacity (0 = unbounded queues, the paper's
    #: model).  A dispatch onto a full queue is deflected, then shed.
    queue_capacity: int = 0
    #: Deflections tolerated per dispatch before a job is shed.
    deflect_budget: int = 1
    #: Queue-wait deadline per job in seconds (0 = none).
    job_deadline_s: float = 0.0
    #: Priority-aging rate for queue-reordering local schedulers (0 = off).
    aging_factor: float = 0.0
    #: Degraded-mode External Scheduler name ("" = least-loaded scan).
    degraded_es: str = ""
    #: Route data-mover transfers through the storage reservation ledger.
    storage_reservations: bool = False
    #: Open-loop Poisson arrival rate, jobs/s (0 = the paper's
    #: closed-loop users).  > 0 replaces sequential per-user submission
    #: with one grid-wide arrival stream at this rate — the offered-load
    #: axis of the overload sweep.
    arrival_rate_per_s: float = 0.0

    # ---- Observed failure detection (health layer) -----------------------------
    #: Heartbeat interval for the failure detector (0 = health layer off
    #: unless speculation is armed).  Sites emit heartbeats this often;
    #: the detector raises suspicion after phi × the mean interval of
    #: silence, opens the site's circuit breaker, and probes until it
    #: can be re-admitted.
    health_heartbeat_s: float = 0.0
    #: Fractional heartbeat jitter in [0, 1) (drawn from the dedicated
    #: "health" stream); nonzero jitter gives the detector a real
    #: false-positive rate to measure.
    health_heartbeat_jitter: float = 0.0
    #: Suspicion threshold: silence / mean-interval ratio that trips the
    #: detector.  Lower = faster detection, more false positives.
    health_phi_threshold: float = 3.0
    #: Base interval between half-open breaker probes (s).
    health_probe_interval_s: float = 30.0
    #: Observed-only mode: cut the oracle channel entirely — outages no
    #: longer mark sites down in the information service; the detector
    #: plus the breakers are the only failure knowledge the schedulers
    #: get.  Requires heartbeats.
    health_observed_only: bool = False
    #: Straggler quantile for speculative backup execution (0 = off).
    #: An attempt older than ``speculate_multiplier`` × this quantile of
    #: completed durations gets one backup clone; first completion wins.
    speculate_quantile: float = 0.0
    #: Straggler threshold multiplier over the quantile duration.
    speculate_multiplier: float = 2.0

    # ---- Data durability --------------------------------------------------------
    #: Target live replicas per dataset (1 = the paper's single pinned
    #: primary).  > 1 requires ``durability_repair``.
    replication_factor: int = 1
    #: Arm the RepairManager: under-replicated datasets are re-copied
    #: through the data mover until the target factor holds (or the
    #: dataset is marked lost).
    durability_repair: bool = False
    #: Background scrubber period in seconds (0 = off).  Each pass
    #: checksum-verifies every resident replica and quarantines corrupt
    #: ones; corruption is otherwise only found on access.
    scrub_interval_s: float = 0.0
    #: Repair placement policy: "closest" (hop count) or "forecast"
    #: (NWS bandwidth prediction over observed transfers).
    repair_placement: str = "closest"

    # ---- DAG workloads ---------------------------------------------------------
    #: Dependency motif wired over each user's job list ("none" = the
    #: paper's independent jobs; "chain", "diamond", "fanout",
    #: "mapreduce" — see :mod:`repro.workload.dag`).  Non-"none" replaces
    #: per-user sequential submission with the dependency-release driver.
    dag_shape: str = "none"
    #: Fan-out / map count for the shapes that have one.
    dag_width: int = 3
    #: Place each released DAG batch group-at-a-time by input-set
    #: signature (DIANA-style bulk scheduling) instead of job-by-job.
    #: Requires a DAG shape.
    bulk_submission: bool = False

    # ---- Replication seed ----------------------------------------------------
    seed: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.fault_plan, dict):
            # Cache persistence round-trips configs through plain dicts.
            object.__setattr__(
                self, "fault_plan", FaultPlan.from_json_dict(self.fault_plan))
        if self.n_users < 1 or self.n_sites < 1 or self.n_datasets < 1:
            raise ValueError("users, sites and datasets must all be >= 1")
        if self.n_jobs < self.n_users:
            raise ValueError(
                f"{self.n_jobs} jobs over {self.n_users} users leaves some "
                "users without a job")
        if not (1 <= self.min_processors_per_site
                <= self.max_processors_per_site):
            raise ValueError("bad processor range")
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.storage_capacity_mb <= self.max_dataset_mb:
            raise ValueError(
                "storage must exceed the largest dataset, otherwise no "
                "site can ever cache a remote file")
        if self.catalog_delay_s < 0:
            raise ValueError(
                f"catalog delay must be >= 0, got {self.catalog_delay_s!r}")
        if self.info_timeout_s < 0:
            raise ValueError(
                f"info timeout must be >= 0, got {self.info_timeout_s!r}")
        if self.queue_capacity < 0:
            raise ValueError(
                f"queue capacity must be >= 0, got {self.queue_capacity!r}")
        if self.deflect_budget < 0:
            raise ValueError(
                f"deflect budget must be >= 0, got {self.deflect_budget!r}")
        if self.job_deadline_s < 0:
            raise ValueError(
                f"job deadline must be >= 0, got {self.job_deadline_s!r}")
        if self.aging_factor < 0:
            raise ValueError(
                f"aging factor must be >= 0, got {self.aging_factor!r}")
        if self.arrival_rate_per_s < 0:
            raise ValueError(
                f"arrival rate must be >= 0, "
                f"got {self.arrival_rate_per_s!r}")
        from repro.workload.dag import DAG_SHAPES
        if self.dag_shape not in DAG_SHAPES:
            raise ValueError(
                f"unknown DAG shape {self.dag_shape!r}; expected one of "
                f"{DAG_SHAPES}")
        if self.dag_width < 1:
            raise ValueError(
                f"DAG width must be >= 1, got {self.dag_width!r}")
        if self.bulk_submission and self.dag_shape == "none":
            raise ValueError(
                "bulk submission requires a DAG shape (batches are the "
                "unit of bulk placement)")
        if self.dag_shape != "none" and self.arrival_rate_per_s > 0:
            raise ValueError(
                "DAG workloads are incompatible with open-loop arrivals: "
                "release order is driven by dependencies, not a Poisson "
                "stream")
        # Health-layer knob sanity; the full cross-field validation lives
        # in HealthPolicy.__post_init__ (constructed by build_grid).
        if self.health_heartbeat_s < 0:
            raise ValueError(
                f"heartbeat interval must be >= 0, "
                f"got {self.health_heartbeat_s!r}")
        if self.health_observed_only and self.health_heartbeat_s == 0:
            raise ValueError(
                "observed-only mode needs the heartbeat detector: set "
                "health_heartbeat_s > 0")
        if not 0.0 <= self.speculate_quantile < 1.0:
            raise ValueError(
                f"speculation quantile must be in [0, 1), "
                f"got {self.speculate_quantile!r}")
        if self.speculate_quantile > 0 and self.dag_shape != "none":
            raise ValueError(
                "speculative execution is incompatible with DAG "
                "workloads: dependency release keys on the primary "
                "attempt reaching DONE")
        # Durability knob sanity; cross-field validation lives in
        # DurabilityPolicy.__post_init__ (constructed by build_grid).
        if self.replication_factor < 1:
            raise ValueError(
                f"replication factor must be >= 1, "
                f"got {self.replication_factor!r}")
        if self.replication_factor > 1 and not self.durability_repair:
            raise ValueError(
                "replication_factor > 1 needs the RepairManager: set "
                "durability_repair=True")
        if self.scrub_interval_s < 0:
            raise ValueError(
                f"scrub interval must be >= 0, "
                f"got {self.scrub_interval_s!r}")
        from repro.grid.durability import PLACEMENTS
        if self.repair_placement not in PLACEMENTS:
            raise ValueError(
                f"unknown repair placement {self.repair_placement!r}; "
                f"expected one of {PLACEMENTS}")

    # -- factories -------------------------------------------------------------

    @classmethod
    def paper(cls, bandwidth_mbps: float = SCENARIO_1_BANDWIDTH,
              seed: int = 0) -> "SimulationConfig":
        """The exact Table-1 configuration (scenario chosen by bandwidth)."""
        return cls(bandwidth_mbps=bandwidth_mbps, seed=seed)

    def scaled(self, factor: float) -> "SimulationConfig":
        """A proportionally smaller (or larger) configuration.

        Used by tests and quick benchmarks: user/site/dataset/job counts
        scale together so queueing and popularity effects keep roughly the
        same character.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        n_sites = max(2, round(self.n_sites * factor))
        n_users = max(n_sites, round(self.n_users * factor))
        return dataclasses.replace(
            self,
            n_users=n_users,
            n_sites=n_sites,
            n_datasets=max(10, round(self.n_datasets * factor)),
            n_jobs=max(n_users, round(self.n_jobs * factor)),
        )

    def with_(self, **changes) -> "SimulationConfig":
        """A copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def table1(self) -> Dict[str, str]:
        """The Table-1 rows, formatted as the paper prints them."""
        return {
            "Total number of users": str(self.n_users),
            "Number of Sites": str(self.n_sites),
            "Compute Elements/Site": (
                f"{self.min_processors_per_site}-"
                f"{self.max_processors_per_site}"),
            "Total number of Datasets": str(self.n_datasets),
            "Connectivity Bandwidth": f"{self.bandwidth_mbps:g} MB/sec",
            "Size of Workload": f"{self.n_jobs} jobs",
        }

"""Experiment harness: configuration, runners, and paper reproductions.

* :mod:`~repro.experiments.config` — :class:`SimulationConfig`, whose
  defaults are exactly Table 1 of the paper.
* :mod:`~repro.experiments.runner` — build-and-run helpers: one run, seed
  replications, the 4×3 algorithm matrix, the full 72-run study.
* :mod:`~repro.experiments.parallel` — process-pool fan-out of
  independent runs with deterministic merging and an on-disk result
  cache (``run_matrix(..., jobs=N)``).
* :mod:`~repro.experiments.paper` — entry points that regenerate each
  figure/table of §5 and return the same rows/series the paper plots.
"""

from repro.experiments.config import SimulationConfig
from repro.experiments.parallel import ParallelRunner, ResultCache, RunSpec
from repro.experiments.persistence import load_matrix, save_matrix
from repro.experiments.sweep import SweepResult, sweep
from repro.experiments.runner import (
    MatrixResult,
    build_grid,
    run_matrix,
    run_replicated,
    run_single,
)
from repro.experiments.paper import (
    reproduce_figure2,
    reproduce_figure3_and_4,
    reproduce_figure5,
    table1_parameters,
)

__all__ = [
    "MatrixResult",
    "ParallelRunner",
    "ResultCache",
    "RunSpec",
    "SimulationConfig",
    "build_grid",
    "SweepResult",
    "load_matrix",
    "save_matrix",
    "sweep",
    "reproduce_figure2",
    "reproduce_figure3_and_4",
    "reproduce_figure5",
    "run_matrix",
    "run_replicated",
    "run_single",
    "table1_parameters",
]

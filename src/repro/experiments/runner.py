"""Build-and-run helpers for simulation experiments.

The paper's methodology (§5.2): for each of the 4×3 algorithm pairs, three
replications with different random seeds, at two bandwidth scenarios — 72
experiments.  :func:`run_matrix` executes one scenario's 36 runs with
*paired* workloads: for a given seed, every algorithm pair sees the exact
same users, datasets, placements, and job sequences.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.config import SimulationConfig
from repro.experiments.parallel import ParallelRunner, RunSpec
from repro.grid.arrivals import OpenArrivalProcess
from repro.grid.grid import DataGrid
from repro.grid.health import HealthPolicy
from repro.grid.overload import OverloadPolicy
from repro.grid.staleness import InfoPolicy
from repro.grid.user import User
from repro.metrics.collector import RunMetrics
from repro.metrics.summary import MetricSummary, summarize
from repro.network.topology import Topology
from repro.network.transfer import EqualShareAllocator, MaxMinFairAllocator
from repro.scheduling.registry import (
    ALL_DS,
    ALL_ES,
    make_dataset_scheduler,
    make_external_scheduler,
    make_local_scheduler,
)
from repro.sim.core import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.dag import DagDriver
from repro.workload.generator import Workload, WorkloadGenerator
from repro.workload.popularity import make_popularity_model


def _build_topology(config: SimulationConfig,
                    rng: random.Random) -> Topology:
    if config.topology == "hierarchical":
        return Topology.hierarchical(
            config.n_sites, config.bandwidth_mbps,
            branching=config.branching)
    if config.topology == "star":
        return Topology.star(config.n_sites, config.bandwidth_mbps)
    if config.topology == "ring":
        return Topology.ring(config.n_sites, config.bandwidth_mbps)
    if config.topology == "random":
        return Topology.random_geometric(
            config.n_sites, config.bandwidth_mbps, rng=rng)
    raise ValueError(f"unknown topology {config.topology!r}")


def _make_allocator(config: SimulationConfig):
    if config.allocator == "equal-share":
        return EqualShareAllocator()
    if config.allocator == "max-min":
        return MaxMinFairAllocator()
    raise ValueError(f"unknown allocator {config.allocator!r}")


def make_workload(config: SimulationConfig,
                  seed: Optional[int] = None) -> Workload:
    """Generate the workload for a config/seed, independent of algorithms."""
    streams = RandomStreams(config.seed if seed is None else seed)
    sites = [f"site{s:02d}" for s in range(config.n_sites)]
    popularity_kwargs = {}
    if config.popularity_model == "geometric":
        popularity_kwargs["p"] = config.geometric_p
    elif config.popularity_model == "zipf":
        popularity_kwargs["alpha"] = config.zipf_alpha
    popularity = make_popularity_model(
        config.popularity_model, config.n_datasets, **popularity_kwargs)
    generator = WorkloadGenerator(
        n_users=config.n_users,
        n_datasets=config.n_datasets,
        n_jobs=config.n_jobs,
        sites=sites,
        rng=streams.stream("workload"),
        popularity=popularity,
        compute_seconds_per_gb=config.compute_seconds_per_gb,
        min_size_mb=config.min_dataset_mb,
        max_size_mb=config.max_dataset_mb,
        inputs_per_job=config.inputs_per_job,
        output_fraction=config.output_fraction,
        dag_shape=config.dag_shape,
        dag_width=config.dag_width,
    )
    return generator.generate()


def build_grid(
    config: SimulationConfig,
    es_name: str,
    ds_name: str,
    workload: Workload,
    seed: Optional[int] = None,
    tracer=None,
) -> Tuple[Simulator, DataGrid]:
    """Wire a ready-to-run grid for one algorithm combination.

    The workload must be fresh (jobs in CREATED state); pass
    ``workload.fresh()`` when reusing one across runs.  ``tracer`` (a
    :class:`repro.sim.trace.Tracer`) turns on domain-event tracing;
    emissions never draw randomness, so a traced run is bitwise-identical
    to an untraced one.
    """
    streams = RandomStreams(config.seed if seed is None else seed)
    sim = Simulator()
    topology = _build_topology(config, streams.stream("topology"))

    proc_rng = streams.stream("site-processors")
    site_processors = {
        name: proc_rng.randint(config.min_processors_per_site,
                               config.max_processors_per_site)
        for name in sorted(topology.sites)
    }

    external = make_external_scheduler(es_name, streams.stream("es"))
    local = make_local_scheduler(config.local_scheduler)
    dataset_sched = make_dataset_scheduler(
        ds_name, streams.stream("ds"),
        popularity_threshold=config.popularity_threshold,
        check_interval_s=config.ds_check_interval_s,
        neighbor_hops=config.neighbor_hops,
        delete_idle_after_s=config.ds_delete_idle_after_s,
    )

    # The "faults" stream is only drawn when a plan is active, so adding
    # the fault layer cannot perturb any other stream in fault-free runs.
    fault_plan = config.fault_plan
    if fault_plan is not None and fault_plan.is_null:
        fault_plan = None
    # Same contract for the "overload" stream: a null policy is dropped
    # entirely so default configs take the exact pre-overload paths.
    overload_policy = OverloadPolicy(
        queue_capacity=config.queue_capacity,
        deflect_budget=config.deflect_budget,
        job_deadline_s=config.job_deadline_s,
        aging_factor=config.aging_factor,
        degraded_es=config.degraded_es,
        storage_reservations=config.storage_reservations,
    )
    if overload_policy.is_null:
        overload_policy = None
    # Same contract again for the "health" stream: a null policy is
    # dropped, and the stream is drawn only when the layer is active.
    health_policy = HealthPolicy(
        heartbeat_interval_s=config.health_heartbeat_s,
        heartbeat_jitter=config.health_heartbeat_jitter,
        phi_threshold=config.health_phi_threshold,
        probe_interval_s=config.health_probe_interval_s,
        probe_backoff_cap_s=max(240.0, config.health_probe_interval_s),
        observed_only=config.health_observed_only,
        speculate_quantile=config.speculate_quantile,
        speculate_multiplier=config.speculate_multiplier,
    )
    if health_policy.is_null:
        health_policy = None
    # Same contract for the "durability" stream: a null policy is
    # dropped, and the stream is drawn only when the layer is armed —
    # either by policy or by durability faults in the plan (the grid
    # then auto-installs a detection-only manager).
    from repro.grid.durability import DurabilityPolicy
    durability_policy = DurabilityPolicy(
        replication_factor=config.replication_factor,
        repair=config.durability_repair,
        scrub_interval_s=config.scrub_interval_s,
        placement=config.repair_placement,
    )
    if durability_policy.is_null:
        durability_policy = None
    durability_armed = (
        durability_policy is not None
        or (fault_plan is not None and fault_plan.has_durability_faults))
    grid = DataGrid.create(
        sim=sim,
        topology=topology,
        datasets=workload.datasets,
        external_scheduler=external,
        local_scheduler=local,
        dataset_scheduler=dataset_sched,
        site_processors=site_processors,
        storage_capacity_mb=config.storage_capacity_mb,
        datamover_rng=streams.stream("datamover"),
        info_policy=InfoPolicy(
            refresh_interval_s=config.info_refresh_interval_s,
            catalog_delay_s=config.catalog_delay_s,
            query_timeout_s=config.info_timeout_s,
        ),
        allocator=_make_allocator(config),
        fault_plan=fault_plan,
        fault_rng=(streams.stream("faults")
                   if fault_plan is not None else None),
        tracer=tracer,
        watchdog_interval_s=300.0 if config.watchdog else 0.0,
        overload_policy=overload_policy,
        overload_rng=(streams.stream("overload")
                      if overload_policy is not None else None),
        health_policy=health_policy,
        health_rng=(streams.stream("health")
                    if health_policy is not None else None),
        durability_policy=durability_policy,
        durability_rng=(streams.stream("durability")
                        if durability_armed else None),
    )
    grid.place_initial_replicas(workload.initial_placement)
    if config.dag_shape != "none":
        # DAG mode: the dependency-release driver replaces both the
        # closed-loop users and open arrivals.  The flattened job list is
        # ordered by job id, so release batches — and therefore the whole
        # run — are independent of dict iteration order and identical at
        # any worker count and through cache replay.
        all_jobs = sorted(
            (job for jobs in workload.user_jobs.values() for job in jobs),
            key=lambda job: job.job_id)
        grid.dag = DagDriver(sim, grid, all_jobs,
                             bulk=config.bulk_submission)
    elif config.arrival_rate_per_s > 0:
        # Open-loop mode: one grid-wide Poisson arrival stream replaces
        # the closed-loop users.  Jobs keep their generated origin sites;
        # the flattened order is by job id, so the stream is independent
        # of dict iteration and identical at any worker count.
        all_jobs = sorted(
            (job for jobs in workload.user_jobs.values() for job in jobs),
            key=lambda job: job.job_id)
        grid.arrivals = OpenArrivalProcess(
            sim, grid, config.arrival_rate_per_s,
            lambda i: all_jobs[i], len(all_jobs),
            rng=streams.stream("arrivals"))
    else:
        for user, site in workload.user_sites.items():
            grid.add_user(
                User(sim, user, site, workload.user_jobs[user], grid))
    return sim, grid


def run_single(
    config: SimulationConfig,
    es_name: str,
    ds_name: str,
    workload: Optional[Workload] = None,
    seed: Optional[int] = None,
    tracer=None,
) -> RunMetrics:
    """Run one (ES, DS) combination to completion and return its metrics.

    Pass a :class:`repro.sim.trace.Tracer` as ``tracer`` to collect the
    run's domain events (read them from ``tracer.records`` afterwards).
    """
    if workload is None:
        workload = make_workload(config, seed)
    else:
        workload = workload.fresh()
    sim, grid = build_grid(config, es_name, ds_name, workload, seed,
                           tracer=tracer)
    makespan = grid.run()
    if grid.watchdog is not None:
        # One final audit at the finish line: the periodic loop may not
        # land exactly on the makespan, and end-state bugs matter most.
        grid.watchdog.check_now()
    return RunMetrics.from_grid(grid, makespan)


def run_replicated(
    config: SimulationConfig,
    es_name: str,
    ds_name: str,
    seeds: Sequence[int] = (0, 1, 2),
    jobs: Optional[int] = 1,
    cache_dir: Optional[Union[str, Path]] = None,
) -> List[RunMetrics]:
    """The paper's three-seed replication for one algorithm pair.

    ``jobs`` fans the seeds out over worker processes (1 = serial;
    None/0 = all cores); ``cache_dir`` enables the on-disk result cache.
    Results are identical at any worker count.
    """
    runner = ParallelRunner(jobs=jobs, cache_dir=cache_dir)
    return runner.map(
        [RunSpec(config, es_name, ds_name, seed) for seed in seeds])


@dataclass
class MatrixResult:
    """Results of a full ES × DS sweep (one bandwidth scenario)."""

    config: SimulationConfig
    seeds: Tuple[int, ...]
    #: (es, ds) → per-seed metrics.
    runs: Dict[Tuple[str, str], List[RunMetrics]] = field(default_factory=dict)

    def summary(self, es_name: str,
                ds_name: str) -> Dict[str, MetricSummary]:
        """Cross-seed summary for one combination."""
        return summarize(self.runs[(es_name, ds_name)])

    def metric_matrix(self, metric: str) -> Dict[Tuple[str, str], float]:
        """Mean value of one RunMetrics field for every combination.

        ``metric`` may be any field named in
        :data:`repro.metrics.summary.SUMMARY_FIELDS` or ``idle_percent``.
        """
        out: Dict[Tuple[str, str], float] = {}
        for key, runs in self.runs.items():
            values = [float(getattr(run, metric)) for run in runs]
            out[key] = sum(values) / len(values)
        return out


def run_matrix(
    config: SimulationConfig,
    es_names: Sequence[str] = tuple(ALL_ES),
    ds_names: Sequence[str] = tuple(ALL_DS),
    seeds: Sequence[int] = (0, 1, 2),
    jobs: Optional[int] = 1,
    cache_dir: Optional[Union[str, Path]] = None,
) -> MatrixResult:
    """Run every (ES, DS) pair under every seed with paired workloads.

    Runs are independent simulations, so ``jobs`` fans them out over a
    process pool (1 = serial in-process; None/0 = one worker per core).
    Workloads are regenerated deterministically from each seed inside the
    workers, so the returned :class:`MatrixResult` is bitwise-identical
    at any worker count.  ``cache_dir`` enables the on-disk result cache
    (see :mod:`repro.experiments.parallel`).
    """
    result = MatrixResult(config=config, seeds=tuple(seeds))
    seeds = tuple(seeds)
    if not seeds:
        for es_name in es_names:
            for ds_name in ds_names:
                result.runs[(es_name, ds_name)] = []
        return result
    specs = [
        RunSpec(config, es_name, ds_name, seed)
        for es_name in es_names
        for ds_name in ds_names
        for seed in seeds
    ]
    runner = ParallelRunner(jobs=jobs, cache_dir=cache_dir)
    metrics = runner.map(specs)
    for pair_index in range(len(specs) // len(seeds)):
        spec = specs[pair_index * len(seeds)]
        result.runs[(spec.es_name, spec.ds_name)] = metrics[
            pair_index * len(seeds):(pair_index + 1) * len(seeds)]
    return result

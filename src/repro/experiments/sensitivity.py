"""Sensitivity experiments: where do the paper's findings degrade?

The paper evaluates every algorithm pair under *perfect* global
information and load the grid can absorb.  Two sweeps probe past those
assumptions:

* :func:`staleness_sensitivity` re-runs chosen (ES, DS) pairs across a
  range of replica-catalog propagation delays (the
  :class:`~repro.grid.staleness.StaleReplicaView` bounded-staleness
  model) and tabulates response time next to the misdirection/bounce
  counters, so one table answers: at what delay does
  ``JobDataPresent``'s data-local advantage stop paying for the jobs it
  sends to the wrong site?
* :func:`overload_sweep` drives chosen pairs with an open-loop Poisson
  arrival stream across an arrival-rate × queue-capacity grid (the
  :class:`~repro.grid.overload.OverloadPolicy` saturation protections)
  and tabulates the degradation counters, locating the saturation knee
  per scheduler pair.
* :func:`recovery_sweep` runs chosen pairs with the observed failure
  detector (:mod:`repro.grid.health`) across a detection-threshold ×
  site-MTBF × partition grid and tabulates detection latency,
  false-positive rate, wasted speculative work, and goodput — locating
  the threshold below which the detector's false alarms cost more than
  its fast detections save.
* :func:`durability_sweep` runs chosen pairs with the data-durability
  layer (:mod:`repro.grid.durability`) across a bit-rot-rate ×
  replication-factor × scrub-period grid and tabulates a survival
  table (datasets lost, jobs abandoned, repair work) — locating the
  cheapest (RF, scrub) combination that keeps every dataset alive at
  each corruption pressure.

Every cell is a full seed-replicated run through the
:class:`~repro.experiments.parallel.ParallelRunner`, so results are
bitwise-identical at any worker count and cache-replayable.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.config import SimulationConfig
from repro.experiments.parallel import ParallelRunner, RunSpec
from repro.faults.plan import FaultPlan, NetworkPartition
from repro.metrics.collector import RunMetrics
from repro.metrics.summary import MetricSummary

#: Default comparison: the paper's decoupled winner vs the traditional
#: compute-only baseline.  Both consult replica state (JobDataPresent for
#: placement, DataLeastLoaded for replication), so both feel the delay;
#: JobLeastLoaded+DataDoNothing barely touches the catalog and acts as
#: the control.
DEFAULT_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("JobDataPresent", "DataLeastLoaded"),
    ("JobLeastLoaded", "DataDoNothing"),
)

#: Default delay grid (seconds): live oracle, one DS period, and beyond.
DEFAULT_DELAYS: Tuple[float, ...] = (0.0, 60.0, 300.0, 900.0, 1800.0)


@dataclass
class SensitivityResult:
    """Results of one staleness sweep over (pair × delay × seed)."""

    delays: Tuple[float, ...]
    pairs: Tuple[Tuple[str, str], ...]
    seeds: Tuple[int, ...]
    #: (es, ds, delay) → per-seed metrics.
    runs: Dict[Tuple[str, str, float], List[RunMetrics]] = (
        field(default_factory=dict))

    def summary(self, es_name: str, ds_name: str, delay: float,
                metric: str) -> MetricSummary:
        """Cross-seed summary of one metric at one (pair, delay) cell."""
        return MetricSummary.of([
            float(getattr(m, metric))
            for m in self.runs[(es_name, ds_name, delay)]])

    def series(self, es_name: str, ds_name: str,
               metric: str) -> List[float]:
        """Mean of ``metric`` for one pair at each delay, in sweep order."""
        return [self.summary(es_name, ds_name, delay, metric).mean
                for delay in self.delays]

    def degradation(self, es_name: str, ds_name: str) -> float:
        """Response-time ratio of the worst delay to the live oracle.

        1.0 means staleness never hurt; 1.4 means the pair lost 40 % of
        its performance at some swept delay.
        """
        series = self.series(es_name, ds_name, "avg_response_time_s")
        return max(series) / series[0] if series[0] > 0 else 1.0

    def table(self) -> str:
        """ASCII table: one row per (pair, delay) cell."""
        lines = [
            f"catalog-staleness sensitivity ({len(self.seeds)} seed(s))",
            f"{'pair':<34}{'delay (s)':>10}{'response (s)':>14}"
            f"{'misdirected':>12}{'bounced':>9}{'stale reads':>12}",
        ]
        for es_name, ds_name in self.pairs:
            for delay in self.delays:
                label = f"{es_name} + {ds_name}"
                lines.append(
                    f"{label:<34}{delay:>10g}"
                    f"{self.summary(es_name, ds_name, delay, 'avg_response_time_s').mean:>14.1f}"
                    f"{self.summary(es_name, ds_name, delay, 'misdirected_jobs').mean:>12.1f}"
                    f"{self.summary(es_name, ds_name, delay, 'bounced_jobs').mean:>9.1f}"
                    f"{self.summary(es_name, ds_name, delay, 'stale_reads').mean:>12.1f}")
        return "\n".join(lines)


def staleness_sensitivity(
    config: SimulationConfig,
    delays: Sequence[float] = DEFAULT_DELAYS,
    pairs: Sequence[Tuple[str, str]] = DEFAULT_PAIRS,
    seeds: Sequence[int] = (0,),
    jobs: Optional[int] = 1,
    cache_dir: Optional[Union[str, Path]] = None,
) -> SensitivityResult:
    """Sweep ``catalog_delay_s`` across ``delays`` for each (ES, DS) pair.

    The workload depends only on the seed, never on the delay, so every
    cell of a row is a paired comparison: identical jobs, identical
    placements, only the information quality differs.  ``jobs`` and
    ``cache_dir`` behave as in :func:`~repro.experiments.runner.run_matrix`.
    """
    if not delays:
        raise ValueError("no delays given")
    if not pairs:
        raise ValueError("no algorithm pairs given")
    result = SensitivityResult(
        delays=tuple(float(d) for d in delays),
        pairs=tuple(pairs),
        seeds=tuple(seeds),
    )
    seeds = tuple(seeds)
    specs = [
        RunSpec(config.with_(catalog_delay_s=delay), es_name, ds_name, seed)
        for es_name, ds_name in result.pairs
        for delay in result.delays
        for seed in seeds
    ]
    runner = ParallelRunner(jobs=jobs, cache_dir=cache_dir)
    metrics = runner.map(specs)
    index = 0
    for es_name, ds_name in result.pairs:
        for delay in result.delays:
            result.runs[(es_name, ds_name, delay)] = metrics[
                index:index + len(seeds)]
            index += len(seeds)
    return result


# ---- overload sweep ---------------------------------------------------------

#: Default offered-load grid, jobs/s.  At test scales the low end is
#: comfortably sub-critical and the high end is far past saturation; real
#: studies should pick rates around their configuration's service rate.
DEFAULT_RATES: Tuple[float, ...] = (0.02, 0.05, 0.1, 0.2)

#: Default per-site queue capacities (jobs waiting).
DEFAULT_CAPACITIES: Tuple[int, ...] = (4, 16)


@dataclass
class OverloadSweepResult:
    """Results of one overload sweep over (pair × rate × capacity × seed)."""

    rates: Tuple[float, ...]
    capacities: Tuple[int, ...]
    pairs: Tuple[Tuple[str, str], ...]
    seeds: Tuple[int, ...]
    #: (es, ds, rate, capacity) → per-seed metrics.
    runs: Dict[Tuple[str, str, float, int], List[RunMetrics]] = (
        field(default_factory=dict))

    def summary(self, es_name: str, ds_name: str, rate: float,
                capacity: int, metric: str) -> MetricSummary:
        """Cross-seed summary of one metric at one sweep cell."""
        return MetricSummary.of([
            float(getattr(m, metric))
            for m in self.runs[(es_name, ds_name, rate, capacity)]])

    def series(self, es_name: str, ds_name: str, capacity: int,
               metric: str) -> List[float]:
        """Mean of ``metric`` for one pair/capacity at each rate."""
        return [
            self.summary(es_name, ds_name, rate, capacity, metric).mean
            for rate in self.rates]

    def knee(self, es_name: str, ds_name: str, capacity: int,
             factor: float = 2.0) -> Optional[float]:
        """The saturation knee: the first swept arrival rate whose mean
        response time exceeds ``factor`` × the lowest-rate response.
        ``None`` = the pair absorbed every swept rate.
        """
        series = self.series(es_name, ds_name, capacity,
                             "avg_response_time_s")
        baseline = series[0]
        if baseline <= 0:
            return None
        for rate, value in zip(self.rates, series):
            if value > factor * baseline:
                return rate
        return None

    def table(self) -> str:
        """ASCII degradation table: one row per (pair, rate, capacity)."""
        lines = [
            f"overload sweep ({len(self.seeds)} seed(s))",
            f"{'pair':<34}{'rate/s':>8}{'cap':>5}{'response (s)':>14}"
            f"{'shed':>6}{'expired':>8}{'deflected':>10}{'peak q':>7}",
        ]
        for es_name, ds_name in self.pairs:
            for capacity in self.capacities:
                for rate in self.rates:
                    cell = lambda m: self.summary(  # noqa: E731
                        es_name, ds_name, rate, capacity, m).mean
                    label = f"{es_name} + {ds_name}"
                    lines.append(
                        f"{label:<34}{rate:>8g}{capacity:>5d}"
                        f"{cell('avg_response_time_s'):>14.1f}"
                        f"{cell('jobs_shed'):>6.1f}"
                        f"{cell('jobs_expired'):>8.1f}"
                        f"{cell('jobs_deflected'):>10.1f}"
                        f"{cell('peak_queue_depth'):>7.1f}")
                knee = self.knee(es_name, ds_name, capacity)
                lines.append(
                    f"  knee (2x response) at capacity {capacity}: "
                    + (f"{knee:g} jobs/s" if knee is not None
                       else "not reached"))
        return "\n".join(lines)


def overload_sweep(
    config: SimulationConfig,
    rates: Sequence[float] = DEFAULT_RATES,
    capacities: Sequence[int] = DEFAULT_CAPACITIES,
    pairs: Sequence[Tuple[str, str]] = DEFAULT_PAIRS,
    seeds: Sequence[int] = (0,),
    jobs: Optional[int] = 1,
    cache_dir: Optional[Union[str, Path]] = None,
) -> OverloadSweepResult:
    """Sweep open-loop arrival rate × queue capacity for each pair.

    Each cell replaces the paper's closed-loop users with a Poisson
    stream at the given rate and bounds every site queue at the given
    capacity (0 = unbounded, the graceful-degradation control).  The
    workload depends only on the seed, so cells along the rate axis are
    paired comparisons.  Other overload knobs (deadline, reservations,
    degraded ES) are taken from ``config`` unchanged.
    """
    if not rates:
        raise ValueError("no arrival rates given")
    if not capacities:
        raise ValueError("no queue capacities given")
    if not pairs:
        raise ValueError("no algorithm pairs given")
    result = OverloadSweepResult(
        rates=tuple(float(r) for r in rates),
        capacities=tuple(int(c) for c in capacities),
        pairs=tuple(pairs),
        seeds=tuple(seeds),
    )
    seeds = tuple(seeds)
    specs = [
        RunSpec(
            config.with_(arrival_rate_per_s=rate, queue_capacity=capacity),
            es_name, ds_name, seed)
        for es_name, ds_name in result.pairs
        for rate in result.rates
        for capacity in result.capacities
        for seed in seeds
    ]
    runner = ParallelRunner(jobs=jobs, cache_dir=cache_dir)
    metrics = runner.map(specs)
    index = 0
    for es_name, ds_name in result.pairs:
        for rate in result.rates:
            for capacity in result.capacities:
                result.runs[(es_name, ds_name, rate, capacity)] = metrics[
                    index:index + len(seeds)]
                index += len(seeds)
    return result

# ---- recovery sweep ---------------------------------------------------------

#: Default phi-suspicion thresholds: hair-trigger, default, conservative.
DEFAULT_THRESHOLDS: Tuple[float, ...] = (2.0, 3.0, 6.0)

#: Default site-MTBF grid (seconds).  0 = no random failures, the
#: false-positive control; the rest span frequent to occasional crashes
#: at test scales.
DEFAULT_MTBFS: Tuple[float, ...] = (0.0, 3600.0, 14400.0)


def _partition_for(config: SimulationConfig, start_s: float,
                   duration_s: float) -> NetworkPartition:
    """The sweep's canonical partition: the first quarter of the sites
    (at least one) cut off for one window."""
    count = max(1, config.n_sites // 4)
    sites = tuple(f"site{s:02d}" for s in range(count))
    return NetworkPartition(sites=sites, start_s=start_s,
                            end_s=start_s + duration_s)


@dataclass
class RecoverySweepResult:
    """Results of one recovery sweep over
    (pair × threshold × MTBF × partition × seed)."""

    thresholds: Tuple[float, ...]
    mtbfs: Tuple[float, ...]
    partitioned: Tuple[bool, ...]
    pairs: Tuple[Tuple[str, str], ...]
    seeds: Tuple[int, ...]
    #: (es, ds, threshold, mtbf, partitioned) → per-seed metrics.
    runs: Dict[Tuple[str, str, float, float, bool], List[RunMetrics]] = (
        field(default_factory=dict))

    def summary(self, es_name: str, ds_name: str, threshold: float,
                mtbf: float, part: bool, metric: str) -> MetricSummary:
        """Cross-seed summary of one metric at one sweep cell."""
        return MetricSummary.of([
            float(getattr(m, metric))
            for m in self.runs[(es_name, ds_name, threshold, mtbf, part)]])

    def series(self, es_name: str, ds_name: str, mtbf: float, part: bool,
               metric: str) -> List[float]:
        """Mean of ``metric`` for one pair/MTBF/partition at each
        threshold, in sweep order."""
        return [
            self.summary(es_name, ds_name, threshold, mtbf, part, metric).mean
            for threshold in self.thresholds]

    def safe_threshold(self, es_name: str, ds_name: str, mtbf: float,
                       part: bool, max_fp_rate: float = 0.05
                       ) -> Optional[float]:
        """The lowest swept threshold whose false-positive rate stays at
        or under ``max_fp_rate`` — i.e. the fastest detector setting that
        is not crying wolf.  ``None`` = every swept threshold exceeded it.
        """
        for threshold in self.thresholds:
            fp = self.summary(es_name, ds_name, threshold, mtbf, part,
                              "false_positive_rate").mean
            if fp <= max_fp_rate:
                return threshold
        return None

    def table(self) -> str:
        """ASCII table: one row per (pair, threshold, mtbf, partition)."""
        lines = [
            f"recovery sweep ({len(self.seeds)} seed(s))",
            f"{'pair':<34}{'phi':>5}{'mtbf (s)':>10}{'part':>6}"
            f"{'detect (s)':>12}{'fp rate':>9}{'wasted (s)':>12}"
            f"{'goodput':>9}",
        ]
        for es_name, ds_name in self.pairs:
            for part in self.partitioned:
                for mtbf in self.mtbfs:
                    for threshold in self.thresholds:
                        cell = lambda m: self.summary(  # noqa: E731
                            es_name, ds_name, threshold, mtbf, part, m).mean
                        label = f"{es_name} + {ds_name}"
                        lines.append(
                            f"{label:<34}{threshold:>5g}{mtbf:>10g}"
                            f"{'yes' if part else 'no':>6}"
                            f"{cell('mean_detection_latency_s'):>12.1f}"
                            f"{cell('false_positive_rate'):>9.3f}"
                            f"{cell('speculative_wasted_s'):>12.1f}"
                            f"{cell('goodput'):>9.3f}")
        return "\n".join(lines)


def recovery_sweep(
    config: SimulationConfig,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    mtbfs: Sequence[float] = DEFAULT_MTBFS,
    partitioned: Sequence[bool] = (False, True),
    pairs: Sequence[Tuple[str, str]] = DEFAULT_PAIRS,
    seeds: Sequence[int] = (0,),
    jobs: Optional[int] = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    partition_start_s: float = 1800.0,
    partition_duration_s: float = 1800.0,
) -> RecoverySweepResult:
    """Sweep the observed failure detector across a threshold × MTBF ×
    partition grid for each (ES, DS) pair.

    Every cell runs with heartbeats on (``config.health_heartbeat_s`` if
    set, else 30 s) and the swept phi threshold; the fault plan is the
    config's plan with ``site_mtbf_s`` overridden per cell and, in the
    partitioned cells, one canonical partition added (the first quarter
    of the sites, cut off for ``partition_duration_s`` starting at
    ``partition_start_s``).  The workload depends only on the seed, so
    cells along every axis are paired comparisons.
    """
    if not thresholds:
        raise ValueError("no detection thresholds given")
    if not mtbfs:
        raise ValueError("no MTBF values given")
    if not partitioned:
        raise ValueError("no partition settings given")
    if not pairs:
        raise ValueError("no algorithm pairs given")
    result = RecoverySweepResult(
        thresholds=tuple(float(t) for t in thresholds),
        mtbfs=tuple(float(m) for m in mtbfs),
        partitioned=tuple(bool(p) for p in partitioned),
        pairs=tuple(pairs),
        seeds=tuple(seeds),
    )
    seeds = tuple(seeds)
    heartbeat = (config.health_heartbeat_s
                 if config.health_heartbeat_s > 0 else 30.0)
    base_plan = config.fault_plan or FaultPlan()
    partition = _partition_for(config, partition_start_s,
                               partition_duration_s)

    def cell_config(threshold: float, mtbf: float,
                    part: bool) -> SimulationConfig:
        plan = dataclasses.replace(
            base_plan,
            site_mtbf_s=mtbf,
            partitions=(base_plan.partitions + (partition,)
                        if part else base_plan.partitions),
        )
        return config.with_(
            fault_plan=(plan if not plan.is_null else None),
            health_heartbeat_s=heartbeat,
            health_phi_threshold=threshold,
        )

    specs = [
        RunSpec(cell_config(threshold, mtbf, part), es_name, ds_name, seed)
        for es_name, ds_name in result.pairs
        for part in result.partitioned
        for mtbf in result.mtbfs
        for threshold in result.thresholds
        for seed in seeds
    ]
    runner = ParallelRunner(jobs=jobs, cache_dir=cache_dir)
    metrics = runner.map(specs)
    index = 0
    for es_name, ds_name in result.pairs:
        for part in result.partitioned:
            for mtbf in result.mtbfs:
                for threshold in result.thresholds:
                    result.runs[
                        (es_name, ds_name, threshold, mtbf, part)] = metrics[
                        index:index + len(seeds)]
                    index += len(seeds)
    return result


# ---- durability sweep -------------------------------------------------------

#: Default per-site bit-rot MTBF grid (seconds).  0 = no corruption, the
#: baseline control; the rest span occasional to aggressive rot at test
#: scales.
DEFAULT_CORRUPTION_MTBFS: Tuple[float, ...] = (0.0, 14400.0, 3600.0)

#: Default replication-factor grid.  1 = the paper's single primary
#: (repair off: the detection-only baseline); higher factors arm the
#: RepairManager.
DEFAULT_RFS: Tuple[int, ...] = (1, 2)

#: Default scrubber periods (seconds).  0 = on-access detection only.
DEFAULT_SCRUBS: Tuple[float, ...] = (0.0, 600.0)


@dataclass
class DurabilitySweepResult:
    """Results of one durability sweep over
    (pair × corruption-MTBF × RF × scrub × seed)."""

    mtbfs: Tuple[float, ...]
    rfs: Tuple[int, ...]
    scrubs: Tuple[float, ...]
    pairs: Tuple[Tuple[str, str], ...]
    seeds: Tuple[int, ...]
    #: (es, ds, mtbf, rf, scrub) → per-seed metrics.
    runs: Dict[Tuple[str, str, float, int, float], List[RunMetrics]] = (
        field(default_factory=dict))

    def summary(self, es_name: str, ds_name: str, mtbf: float, rf: int,
                scrub: float, metric: str) -> MetricSummary:
        """Cross-seed summary of one metric at one sweep cell."""
        return MetricSummary.of([
            float(getattr(m, metric))
            for m in self.runs[(es_name, ds_name, mtbf, rf, scrub)]])

    def series(self, es_name: str, ds_name: str, rf: int, scrub: float,
               metric: str) -> List[float]:
        """Mean of ``metric`` for one pair/RF/scrub at each corruption
        MTBF, in sweep order."""
        return [
            self.summary(es_name, ds_name, mtbf, rf, scrub, metric).mean
            for mtbf in self.mtbfs]

    def surviving_rf(self, es_name: str, ds_name: str, mtbf: float,
                     scrub: float) -> Optional[int]:
        """The lowest swept replication factor that lost zero datasets
        across every seed at this corruption pressure.  ``None`` = every
        swept factor lost data.
        """
        for rf in sorted(self.rfs):
            lost = [m.datasets_lost
                    for m in self.runs[(es_name, ds_name, mtbf, rf, scrub)]]
            if max(lost) == 0:
                return rf
        return None

    def table(self) -> str:
        """ASCII survival table: one row per (pair, mtbf, rf, scrub)."""
        lines = [
            f"durability sweep ({len(self.seeds)} seed(s))",
            f"{'pair':<34}{'mtbf (s)':>10}{'rf':>4}{'scrub':>7}"
            f"{'corrupt':>9}{'repaired':>9}{'lost':>6}{'abandoned':>10}"
            f"{'response (s)':>14}",
        ]
        for es_name, ds_name in self.pairs:
            for mtbf in self.mtbfs:
                for rf in self.rfs:
                    for scrub in self.scrubs:
                        cell = lambda m: self.summary(  # noqa: E731
                            es_name, ds_name, mtbf, rf, scrub, m).mean
                        label = f"{es_name} + {ds_name}"
                        lines.append(
                            f"{label:<34}{mtbf:>10g}{rf:>4d}{scrub:>7g}"
                            f"{cell('replicas_corrupted'):>9.1f}"
                            f"{cell('replicas_repaired'):>9.1f}"
                            f"{cell('datasets_lost'):>6.1f}"
                            f"{cell('jobs_abandoned_data_lost'):>10.1f}"
                            f"{cell('avg_response_time_s'):>14.1f}")
        return "\n".join(lines)


def durability_sweep(
    config: SimulationConfig,
    mtbfs: Sequence[float] = DEFAULT_CORRUPTION_MTBFS,
    rfs: Sequence[int] = DEFAULT_RFS,
    scrubs: Sequence[float] = DEFAULT_SCRUBS,
    pairs: Sequence[Tuple[str, str]] = DEFAULT_PAIRS,
    seeds: Sequence[int] = (0,),
    jobs: Optional[int] = 1,
    cache_dir: Optional[Union[str, Path]] = None,
) -> DurabilitySweepResult:
    """Sweep bit-rot pressure × replication factor × scrub period for
    each (ES, DS) pair.

    Every cell overrides the config's fault plan with the swept per-site
    ``corruption_mtbf_s`` and runs the durability layer at the swept
    replication factor and scrub period; factors above 1 arm the
    RepairManager, factor 1 is the detection-only baseline (the paper's
    single-primary behavior plus checksums).  The workload depends only
    on the seed, so cells along every axis are paired comparisons.
    """
    if not mtbfs:
        raise ValueError("no corruption MTBF values given")
    if not rfs:
        raise ValueError("no replication factors given")
    if not scrubs:
        raise ValueError("no scrub periods given")
    if not pairs:
        raise ValueError("no algorithm pairs given")
    result = DurabilitySweepResult(
        mtbfs=tuple(float(m) for m in mtbfs),
        rfs=tuple(int(r) for r in rfs),
        scrubs=tuple(float(s) for s in scrubs),
        pairs=tuple(pairs),
        seeds=tuple(seeds),
    )
    seeds = tuple(seeds)
    base_plan = config.fault_plan or FaultPlan()

    def cell_config(mtbf: float, rf: int, scrub: float) -> SimulationConfig:
        plan = dataclasses.replace(base_plan, corruption_mtbf_s=mtbf)
        return config.with_(
            fault_plan=(plan if not plan.is_null else None),
            replication_factor=rf,
            durability_repair=rf > 1,
            scrub_interval_s=scrub,
        )

    specs = [
        RunSpec(cell_config(mtbf, rf, scrub), es_name, ds_name, seed)
        for es_name, ds_name in result.pairs
        for mtbf in result.mtbfs
        for rf in result.rfs
        for scrub in result.scrubs
        for seed in seeds
    ]
    runner = ParallelRunner(jobs=jobs, cache_dir=cache_dir)
    metrics = runner.map(specs)
    index = 0
    for es_name, ds_name in result.pairs:
        for mtbf in result.mtbfs:
            for rf in result.rfs:
                for scrub in result.scrubs:
                    result.runs[
                        (es_name, ds_name, mtbf, rf, scrub)] = metrics[
                        index:index + len(seeds)]
                    index += len(seeds)
    return result

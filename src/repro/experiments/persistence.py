"""Persisting experiment results.

A full 72-run study takes a minute; archiving its results lets analyses
(figure regeneration, statistical comparison) run without re-simulating.
:class:`~repro.experiments.runner.MatrixResult` and individual
:class:`~repro.metrics.collector.RunMetrics` serialize to versioned JSON.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import MatrixResult
from repro.metrics.collector import RunMetrics

FORMAT_VERSION = 1


def run_metrics_to_dict(metrics: RunMetrics) -> Dict[str, Any]:
    """RunMetrics → plain dict (dataclass fields only)."""
    return dataclasses.asdict(metrics)


def run_metrics_from_dict(data: Dict[str, Any]) -> RunMetrics:
    """Inverse of :func:`run_metrics_to_dict`."""
    field_names = {f.name for f in dataclasses.fields(RunMetrics)}
    unknown = set(data) - field_names
    if unknown:
        raise ValueError(f"unknown RunMetrics fields {sorted(unknown)}")
    return RunMetrics(**data)


def matrix_to_dict(result: MatrixResult) -> Dict[str, Any]:
    """MatrixResult → versioned, JSON-serializable dict."""
    return {
        "version": FORMAT_VERSION,
        "config": dataclasses.asdict(result.config),
        "seeds": list(result.seeds),
        "runs": {
            f"{es}|{ds}": [run_metrics_to_dict(m) for m in runs]
            for (es, ds), runs in result.runs.items()
        },
    }


def matrix_from_dict(data: Dict[str, Any]) -> MatrixResult:
    """Inverse of :func:`matrix_to_dict`."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported results version {version!r} "
            f"(expected {FORMAT_VERSION})")
    config = SimulationConfig(**data["config"])
    result = MatrixResult(config=config, seeds=tuple(data["seeds"]))
    for key, runs in data["runs"].items():
        es, _, ds = key.partition("|")
        if not ds:
            raise ValueError(f"malformed run key {key!r}")
        result.runs[(es, ds)] = [run_metrics_from_dict(m) for m in runs]
    return result


def save_matrix(result: MatrixResult, path: Union[str, Path]) -> None:
    """Archive a sweep's results as JSON."""
    Path(path).write_text(json.dumps(matrix_to_dict(result), indent=1))


def load_matrix(path: Union[str, Path]) -> MatrixResult:
    """Load a sweep archived by :func:`save_matrix`."""
    return matrix_from_dict(json.loads(Path(path).read_text()))

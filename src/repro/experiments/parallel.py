"""Parallel execution of independent simulation runs.

The paper's evidence is a 72-run study (4 ES × 3 DS × 3 seeds × 2
bandwidths); every run is an independent single-threaded simulation, so
the whole matrix is embarrassingly parallel.  This module provides:

* :class:`RunSpec` — a picklable description of one run (config +
  algorithm pair + seed).  Everything a worker process needs; workloads
  are regenerated deterministically from the seed inside the worker.
* :class:`ParallelRunner` — executes a list of specs either serially
  (in-process, ``jobs <= 1``) or over a
  :class:`concurrent.futures.ProcessPoolExecutor`, merging results back
  in *submission order* so callers see bitwise-identical metrics at any
  worker count.
* :class:`ResultCache` — an optional on-disk cache under
  ``.repro-cache/`` keyed by a content hash of (config fields, es, ds,
  seed), so repeated benchmark sessions skip already-computed runs.

Determinism contract: a run is a pure function of ``(config, es, ds,
seed)``.  The workload generator and every scheduler draw from named
:class:`~repro.sim.rng.RandomStreams` seeded only by the run seed, so
regenerating the workload in a worker yields the exact runs the serial
path produces — verified by tests/experiments/test_parallel.py down to
exact float equality.

The worker entry point (:func:`execute_spec`) is a module-level function
and specs are plain picklable dataclasses, so the pool works under every
multiprocessing start method, including Windows' ``spawn``.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.config import SimulationConfig
from repro.metrics.collector import RunMetrics

#: Bump when RunMetrics or run semantics change, invalidating old entries.
#: v2: fault-injection metrics added to RunMetrics; configs carry an
#: optional FaultPlan.
#: v3: stale-information metrics (misdirected/bounced/stale reads) added
#: to RunMetrics; configs gain catalog-delay/info-timeout/watchdog knobs.
#: v4: overload metrics (shed/expired/deflected, peaks) added to
#: RunMetrics; configs gain queue-capacity/deadline/aging/reservation/
#: arrival-rate knobs.
#: v5: configs gain DAG-workload knobs (dag-shape/dag-width/bulk).
#: v6: observed-health metrics (suspicions/breakers/speculation) added
#: to RunMetrics; configs gain health/speculation knobs and FaultPlan
#: gains partitions/outage-groups/flapping.
#: v7: durability metrics (corruption/quarantine/repair/loss) added to
#: RunMetrics; configs gain replication-factor/repair/scrub knobs and
#: FaultPlan gains replica corruption/loss and bit-rot.
CACHE_VERSION = 7

#: Default on-disk cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to reproduce one independent simulation run.

    ``trace=True`` makes the worker collect the run's domain-event stream
    (optionally filtered to ``trace_kinds``) and return a
    :class:`TracedRun` instead of bare :class:`RunMetrics`.  Emissions
    never draw randomness, so the metrics of a traced run are
    bitwise-identical to the untraced run of the same spec.
    """

    config: SimulationConfig
    es_name: str
    ds_name: str
    seed: int
    trace: bool = False
    trace_kinds: Optional[Tuple[str, ...]] = None

    def run(self) -> Union[RunMetrics, "TracedRun"]:
        """Execute the run in the current process."""
        return execute_spec(self)

    def cache_key(self) -> str:
        """Content hash identifying this run's result.

        Covers every config field plus the algorithm pair and seed, so any
        parameter change produces a different key; ``CACHE_VERSION`` is
        mixed in so format/semantics bumps invalidate old caches.
        """
        payload = {
            "cache_version": CACHE_VERSION,
            "config": dataclasses.asdict(self.config),
            "es": self.es_name,
            "ds": self.ds_name,
            "seed": self.seed,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@functools.lru_cache(maxsize=4)
def _workload_for(config: SimulationConfig, seed: int):
    """Per-process workload memo: one generation per (config, seed).

    ``run_single`` replays a shared workload via ``Workload.fresh()``, so
    consecutive specs that differ only in algorithm pair (the matrix inner
    loop) skip regeneration — in the serial path and in each worker alike.
    """
    from repro.experiments.runner import make_workload

    return make_workload(config, seed)


@dataclass
class TracedRun:
    """Result of a traced run: metrics plus the wire-form record stream.

    ``records`` holds plain schema dicts (``{"v", "t", "k", "d"}``) rather
    than :class:`~repro.sim.trace.TraceRecord` objects so the payload
    pickles cheaply across process pools and feeds
    :func:`repro.trace.jsonl.write_jsonl` directly.
    """

    metrics: RunMetrics
    records: List[Dict[str, Any]]


def execute_spec(spec: RunSpec) -> Union[RunMetrics, TracedRun]:
    """Worker entry point: run one spec to completion.

    Module-level (not a lambda/method) so process pools can pickle it
    under the ``spawn`` start method.
    """
    from repro.experiments.runner import run_single

    workload = _workload_for(spec.config, spec.seed)
    if not spec.trace:
        return run_single(spec.config, spec.es_name, spec.ds_name,
                          workload=workload, seed=spec.seed)
    from repro.sim.trace import Tracer
    from repro.trace.schema import record_to_dict

    tracer = Tracer(kinds=spec.trace_kinds)
    metrics = run_single(spec.config, spec.es_name, spec.ds_name,
                         workload=workload, seed=spec.seed, tracer=tracer)
    return TracedRun(metrics=metrics,
                     records=[record_to_dict(r) for r in tracer.records])


class ResultCache:
    """Content-addressed on-disk store of :class:`RunMetrics`.

    Layout: ``<root>/<key[:2]>/<key>.json`` — one file per run, atomic
    writes (temp file + rename), corrupt or stale-version entries are
    treated as misses and overwritten.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, spec: RunSpec) -> Path:
        key = spec.cache_key()
        return self.root / key[:2] / f"{key}.json"

    def get(self, spec: RunSpec) -> Optional[RunMetrics]:
        """The cached metrics for a spec, or None on a miss."""
        path = self.path_for(spec)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if data.get("cache_version") != CACHE_VERSION:
            self.misses += 1
            return None
        try:
            metrics = RunMetrics(**data["metrics"])
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return metrics

    def put(self, spec: RunSpec, metrics: RunMetrics) -> None:
        """Store one result (atomic; last writer wins)."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "cache_version": CACHE_VERSION,
            "key": spec.cache_key(),
            "es": spec.es_name,
            "ds": spec.ds_name,
            "seed": spec.seed,
            "metrics": dataclasses.asdict(metrics),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request: None/0 → all cores, floor of 1."""
    if jobs is None or jobs == 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


class ParallelRunner:
    """Runs :class:`RunSpec` lists with deterministic result merging.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs everything serially in
        this process — no pool, no pickling; ``None`` or ``0`` uses every
        core.
    cache_dir:
        Optional directory for an on-disk result cache (see
        :class:`ResultCache`).  ``None`` disables caching.
    mp_context:
        Optional :mod:`multiprocessing` context, e.g.
        ``multiprocessing.get_context("spawn")``.  The default context of
        the platform is used otherwise; the worker path is spawn-safe.
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        mp_context=None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.mp_context = mp_context

    def map(self, specs: Sequence[RunSpec]) -> List[RunMetrics]:
        """Execute every spec, returning results in input order.

        Identical specs are executed once and fanned back out.  Results
        are merged by input position, never completion order, so the
        output is independent of scheduling jitter and worker count.
        """
        specs = list(specs)
        results: List[Optional[RunMetrics]] = [None] * len(specs)

        pending: Dict[RunSpec, List[int]] = {}
        for index, spec in enumerate(specs):
            # Traced specs bypass the cache entirely: the cache stores bare
            # RunMetrics, and a traced result must carry its record stream.
            cached = (self.cache.get(spec)
                      if self.cache is not None and not spec.trace else None)
            if cached is not None:
                results[index] = cached
            else:
                pending.setdefault(spec, []).append(index)

        if pending:
            ordered = list(pending)
            if self.jobs > 1 and len(ordered) > 1:
                computed = self._run_pool(ordered)
            else:
                computed = [execute_spec(spec) for spec in ordered]
            for spec, metrics in zip(ordered, computed):
                if self.cache is not None and not spec.trace:
                    self.cache.put(spec, metrics)
                for index in pending[spec]:
                    results[index] = metrics

        return results  # type: ignore[return-value]

    def _run_pool(self, specs: List[RunSpec]) -> List[RunMetrics]:
        workers = min(self.jobs, len(specs))
        with ProcessPoolExecutor(
                max_workers=workers, mp_context=self.mp_context) as pool:
            futures = [pool.submit(execute_spec, spec) for spec in specs]
            return [future.result() for future in futures]

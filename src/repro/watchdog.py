"""Runtime invariant watchdog: conservation checks while the grid runs.

Simulation bugs rarely announce themselves — a lost job or a storage
accounting leak just shifts the metrics.  The :class:`Watchdog` is a
read-only periodic process that audits the grid's global conservation
invariants *mid-run* and raises a structured :class:`InvariantViolation`
(with the offending trace context, when tracing is on) the moment one
breaks, so a corruption is caught at its source instead of surfacing as a
subtly wrong number thousands of events later.

Invariants checked:

* **jobs-conserved** — no job is lost between the External Scheduler,
  the recovery supervisor, and the site queues: every site's
  ``jobs_in_system`` sums to exactly the
  :class:`~repro.grid.lifecycle.TransitionEngine`'s FETCHING + RUNNING
  counts (attempts killed by faults sit in RETRYING and are excluded),
  per-site completion counters sum to the engine's DONE count, and the
  engine's incremental per-state bookkeeping survives a full recount.
  The cheap O(1) half of this invariant (no state count ever negative)
  also runs inline on *every* transition as an engine guard.
* **storage-accounting** — each site's incremental ``used_mb`` equals the
  recomputed sum of its resident replica sizes and never exceeds
  capacity.
* **transfers-consistent** — no transfer is both completed and aborted;
  finished transfers carry a timestamp and zero remaining bytes; active
  ones carry neither.
* **catalog-consistent** — the replica catalog and the sites' resident
  file sets agree exactly (the catalog is updated synchronously with
  storage, so any divergence is a wiring bug).
* **stale-view-bounded** — when a
  :class:`~repro.grid.staleness.StaleReplicaView` is installed, replaying
  its pending updates reproduces the live catalog and nothing is delayed
  beyond the configured staleness bound.
* **queue-bounded** — with an overload policy's ``queue_capacity`` set,
  no site's waiting-job count exceeds it and no job has consumed more
  deflections than the budget allows.
* **no-overcommit** — each storage element's reservation ledger sums to
  its booked ``reserved_mb`` and ``used + reserved`` never exceeds
  capacity (trivially true without reservations).
* **no-starvation** — with a queue deadline set, no job still waits in a
  queue beyond its deadline (the expiry machinery must have fired).
* **no-double-completion** — with the health layer's speculation armed,
  no primary/backup pair has both attempts DONE: the transition hook
  must have preempted the loser into SPECULATED, and every loser's
  logical job has exactly one DONE attempt.
* **breaker-state-sane** — the health layer's site breakers and the
  information service agree: every open/half-open breaker's site is
  hidden (suspected) and every closed breaker's site is advertised.
* **catalog-durability** — with the durability layer installed, no
  managed dataset is in limbo: every dataset either has at least one
  live cataloged replica (quarantined copies are deregistered, so the
  count is integrity-filtered by construction) or is formally recorded
  as lost.  One transient is legal mid-run: zero replicas with a live
  repair campaign, whose in-flight copy settles the verdict either way.

The watchdog is **off by default** (a watchdog-less run is bitwise
identical to a pre-watchdog build) and *always on in tests*: the test
suite's grid fixtures and experiment helpers install it so every clean,
faulty, and stale run in CI is audited.  Because every check is
read-only, enabling it never changes a run's results — only its
event count.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.grid.job import JobState

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.grid import DataGrid
    from repro.sim.core import Simulator

#: Tolerance for float storage accounting (repeated add/subtract residue).
_MB_EPSILON = 1e-6
#: Trace records attached to a violation for context.
_TRACE_TAIL = 10


class InvariantViolation(AssertionError):
    """A conservation invariant broke mid-run.

    Attributes
    ----------
    invariant:
        Which check failed (``jobs-conserved``, ``storage-accounting``,
        ``transfers-consistent``, ``catalog-consistent``,
        ``stale-view-bounded``, ``queue-bounded``, ``no-overcommit``,
        ``no-starvation``, ``no-double-completion``,
        ``breaker-state-sane``, ``catalog-durability``).
    time:
        Simulated time of the failed check.
    details:
        Structured evidence (counts, site names, sizes).
    trace_tail:
        The last few domain-trace lines before the violation (empty when
        tracing is off).
    """

    def __init__(self, invariant: str, message: str, time: float,
                 details: Optional[Dict[str, Any]] = None,
                 trace_tail: Optional[List[str]] = None) -> None:
        self.invariant = invariant
        self.time = time
        self.details = details or {}
        self.trace_tail = trace_tail or []
        text = f"[t={time:.3f}] {invariant}: {message}"
        if self.details:
            evidence = ", ".join(
                f"{k}={v!r}" for k, v in sorted(self.details.items()))
            text += f" ({evidence})"
        if self.trace_tail:
            text += "\nrecent trace:\n" + "\n".join(
                f"  {line}" for line in self.trace_tail)
        super().__init__(text)


class Watchdog:
    """Periodic, read-only auditor of a wired grid's invariants.

    Parameters
    ----------
    sim, grid:
        The simulator and the fully wired grid to audit.
    interval_s:
        Check period in simulated seconds (default 300 — once per
        Dataset Scheduler cycle at paper settings).
    """

    #: Names of every invariant this watchdog asserts.
    INVARIANTS = ("jobs-conserved", "storage-accounting",
                  "transfers-consistent", "catalog-consistent",
                  "stale-view-bounded", "queue-bounded", "no-overcommit",
                  "no-starvation", "no-double-completion",
                  "breaker-state-sane", "catalog-durability")

    def __init__(self, sim: "Simulator", grid: "DataGrid",
                 interval_s: float = 300.0) -> None:
        if interval_s <= 0:
            raise ValueError(
                f"watchdog interval must be positive, got {interval_s!r}")
        self.sim = sim
        self.grid = grid
        self.interval_s = interval_s
        #: Completed check rounds (each round asserts every invariant).
        self.checks_run = 0

    def install(self) -> "Watchdog":
        """Register on the grid and start the periodic check process."""
        self.grid.watchdog = self
        self.sim.process(self._loop(), name="watchdog")
        return self

    def _loop(self):
        while True:
            yield self.sim.timeout(self.interval_s)
            self.check_now()

    # -- checks -------------------------------------------------------------------

    def check_now(self) -> None:
        """Run every invariant check at the current instant."""
        self._check_jobs()
        self._check_storage()
        self._check_transfers()
        self._check_catalog()
        self._check_stale_view()
        self._check_queue_bounds()
        self._check_overcommit()
        self._check_starvation()
        self._check_double_completion()
        self._check_breaker_state()
        self._check_catalog_durability()
        self.checks_run += 1
        tracer = self.grid.tracer
        if tracer is not None:
            tracer.emit(self.sim.now, "watchdog.check", n=self.checks_run)

    def _fail(self, invariant: str, message: str, **details: Any) -> None:
        tail: List[str] = []
        tracer = self.grid.tracer
        if tracer is not None and tracer.records:
            tail = [str(r) for r in tracer.records[-_TRACE_TAIL:]]
        raise InvariantViolation(invariant, message, time=self.sim.now,
                                 details=details, trace_tail=tail)

    def _check_jobs(self) -> None:
        grid = self.grid
        engine = grid.lifecycle
        in_system = 0
        by_site_completed = 0
        for site in grid.sites.values():
            if site.jobs_in_system < 0:
                self._fail("jobs-conserved",
                           f"site {site.name!r} has negative jobs_in_system",
                           site=site.name, jobs_in_system=site.jobs_in_system)
            in_system += site.jobs_in_system
            by_site_completed += site.jobs_completed
        # The engine's O(1) per-state counts replace the old full scan of
        # submitted jobs; RETRYING (killed, not yet rewound) is its own
        # state, so no ``killed`` flag bookkeeping is needed.
        expected_in_system = (engine.counts[JobState.FETCHING]
                              + engine.counts[JobState.RUNNING])
        completed = engine.counts[JobState.DONE]
        problems = engine.audit()
        if problems:
            self._fail("jobs-conserved",
                       "lifecycle bookkeeping drifted: "
                       + "; ".join(problems),
                       registered_jobs=len(engine.jobs))
        if in_system != expected_in_system:
            self._fail(
                "jobs-conserved",
                "site queues disagree with job states: "
                f"sites hold {in_system} jobs, "
                f"{expected_in_system} jobs are queued/running",
                sites_in_system=in_system,
                jobs_queued_or_running=expected_in_system)
        if by_site_completed != completed:
            self._fail(
                "jobs-conserved",
                f"sites counted {by_site_completed} completions but "
                f"{completed} jobs are COMPLETED",
                site_completions=by_site_completed, jobs_completed=completed)

    def _check_storage(self) -> None:
        for name, storage in self.grid.storages.items():
            actual = sum(
                entry.dataset.size_mb
                for entry in storage._entries.values())
            if abs(actual - storage.used_mb) > _MB_EPSILON:
                self._fail(
                    "storage-accounting",
                    f"storage at {name!r} books {storage.used_mb:.6f} MB "
                    f"but holds {actual:.6f} MB of files",
                    site=name, used_mb=storage.used_mb, resident_mb=actual)
            if storage.used_mb > storage.capacity_mb + _MB_EPSILON:
                self._fail(
                    "storage-accounting",
                    f"storage at {name!r} exceeds capacity",
                    site=name, used_mb=storage.used_mb,
                    capacity_mb=storage.capacity_mb)

    def _check_transfers(self) -> None:
        manager = self.grid.transfers
        for t in manager.completed:
            if t.failed:
                self._fail(
                    "transfers-consistent",
                    f"transfer {t.src}->{t.dst} is both completed and "
                    "aborted", src=t.src, dst=t.dst, size_mb=t.size_mb)
            if t.finished_at is None or t.remaining_mb > _MB_EPSILON:
                self._fail(
                    "transfers-consistent",
                    f"completed transfer {t.src}->{t.dst} still has "
                    f"{t.remaining_mb:.6f} MB outstanding",
                    src=t.src, dst=t.dst, remaining_mb=t.remaining_mb)
        for t in manager.active:
            if t.finished_at is not None or t.failed:
                self._fail(
                    "transfers-consistent",
                    f"active transfer {t.src}->{t.dst} is already "
                    "finished or aborted", src=t.src, dst=t.dst,
                    failed=t.failed, finished_at=t.finished_at)

    def _check_catalog(self) -> None:
        grid = self.grid
        catalog = grid.catalog
        for name, storage in grid.storages.items():
            for fname in storage._entries:
                if not catalog.has_replica(fname, name):
                    self._fail(
                        "catalog-consistent",
                        f"{fname!r} is resident at {name!r} but the "
                        "catalog has no record of it",
                        site=name, dataset=fname)
            for fname in catalog.datasets_at(name):
                if fname not in storage._entries:
                    self._fail(
                        "catalog-consistent",
                        f"catalog advertises {fname!r} at {name!r} but "
                        "the file is not resident",
                        site=name, dataset=fname)

    def _check_stale_view(self) -> None:
        view = self.grid.info.replica_view
        if view is None:
            return
        problems = view.audit()
        if problems:
            self._fail("stale-view-bounded", "; ".join(problems),
                       pending=len(view._pending))

    def _check_queue_bounds(self) -> None:
        policy = self.grid.overload
        if policy is None or policy.queue_capacity == 0:
            return
        cap = policy.queue_capacity
        for site in self.grid.sites.values():
            if site.load > cap:
                self._fail(
                    "queue-bounded",
                    f"site {site.name!r} holds {site.load} waiting jobs, "
                    f"capacity is {cap}",
                    site=site.name, load=site.load, capacity=cap)
        for job in self.grid.submitted_jobs:
            if job.deflections > policy.deflect_budget:
                self._fail(
                    "queue-bounded",
                    f"job {job.job_id} consumed {job.deflections} "
                    f"deflections of a budget of {policy.deflect_budget}",
                    job=job.job_id, deflections=job.deflections,
                    budget=policy.deflect_budget)

    def _check_overcommit(self) -> None:
        for name, storage in self.grid.storages.items():
            booked = sum(storage._reservations.values())
            if abs(booked - storage.reserved_mb) > _MB_EPSILON:
                self._fail(
                    "no-overcommit",
                    f"storage at {name!r} books {storage.reserved_mb:.6f} "
                    f"MB reserved but its ledger sums to {booked:.6f} MB",
                    site=name, reserved_mb=storage.reserved_mb,
                    ledger_mb=booked)
            total = storage.used_mb + storage.reserved_mb
            if total > storage.capacity_mb + _MB_EPSILON:
                self._fail(
                    "no-overcommit",
                    f"storage at {name!r} overcommitted: used + reserved "
                    f"exceeds capacity",
                    site=name, used_mb=storage.used_mb,
                    reserved_mb=storage.reserved_mb,
                    capacity_mb=storage.capacity_mb)

    def _check_starvation(self) -> None:
        policy = self.grid.overload
        if policy is None:
            return
        now = self.sim.now
        engine = self.grid.lifecycle
        # Only FETCHING jobs can starve in a queue, so scan the engine's
        # per-state id-set instead of every job ever submitted.  (The
        # engine additionally enforces this invariant on every ``start``
        # edge via its deadline guard.)
        for job_id in sorted(engine.by_state[JobState.FETCHING]):
            job = engine.jobs[job_id]
            deadline = (job.deadline_s if job.deadline_s is not None
                        else policy.job_deadline_s)
            if deadline <= 0:
                continue
            if (job.processor_at is None and job.queued_at is not None
                    and now - job.queued_at > deadline + _MB_EPSILON):
                self._fail(
                    "no-starvation",
                    f"job {job.job_id} has waited "
                    f"{now - job.queued_at:.3f} s in the queue at "
                    f"{job.execution_site!r}, past its {deadline:g} s "
                    "deadline",
                    job=job.job_id, waited_s=now - job.queued_at,
                    deadline_s=deadline)


    def _check_double_completion(self) -> None:
        health = self.grid.health
        if health is None:
            return
        engine = self.grid.lifecycle
        for job in self.grid.submitted_jobs:
            if job.speculative_of is None:
                continue
            primary = engine.jobs.get(job.speculative_of)
            if primary is None:
                continue
            if (job.state is JobState.DONE
                    and primary.state is JobState.DONE):
                self._fail(
                    "no-double-completion",
                    f"speculation pair ({primary.job_id}, {job.job_id}) "
                    "has both attempts DONE",
                    primary=primary.job_id, clone=job.job_id)
            if (job.state is JobState.SPECULATED
                    and primary.state is JobState.SPECULATED):
                self._fail(
                    "no-double-completion",
                    f"speculation pair ({primary.job_id}, {job.job_id}) "
                    "lost on both sides — nobody completed the logical job",
                    primary=primary.job_id, clone=job.job_id)

    def _check_breaker_state(self) -> None:
        health = self.grid.health
        if health is None:
            return
        info = self.grid.info
        for site, breaker in health.site_breakers.items():
            suspected = info.is_suspected(site)
            if breaker.state == "closed" and suspected:
                self._fail(
                    "breaker-state-sane",
                    f"site {site!r} breaker is closed but the information "
                    "service still hides it",
                    site=site, breaker=breaker.state)
            if breaker.state != "closed" and not suspected:
                self._fail(
                    "breaker-state-sane",
                    f"site {site!r} breaker is {breaker.state} but the "
                    "information service still advertises it",
                    site=site, breaker=breaker.state)

    def _check_catalog_durability(self) -> None:
        durability = self.grid.durability
        if durability is None:
            return
        catalog = self.grid.catalog
        for dataset in self.grid.datasets:
            name = dataset.name
            count = catalog.replica_count(name)
            if count == 0 and not durability.is_lost(name):
                if (durability.repair is not None
                        and durability.repair.is_active(name)):
                    # Legal transient: a repair campaign owns the loss
                    # verdict — a copy may be mid-wire right now.
                    continue
                self._fail(
                    "catalog-durability",
                    f"dataset {name!r} has no cataloged replica yet is "
                    "not recorded as lost — the durability layer missed "
                    "a deregistration",
                    dataset=name, replicas=count)


def attach(grid: "DataGrid", interval_s: float = 300.0) -> Watchdog:
    """Install a watchdog on an already-wired grid (test convenience)."""
    return Watchdog(grid.sim, grid, interval_s=interval_s).install()

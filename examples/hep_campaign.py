#!/usr/bin/env python
"""A high-energy-physics analysis campaign on a tiered Data Grid.

The paper's motivating scenario: a CERN-like community where a tier-0 lab
produces large datasets and hundreds of physicists at university sites run
analysis jobs against them.  This example builds that scenario directly
against the library API (no experiment harness): a custom topology with a
fat backbone, a hand-rolled workload in which each "physics group"
focuses on its own data sample, and per-component wiring.

Run:  python examples/hep_campaign.py
"""

import random

from repro.grid import DataGrid, Dataset, DatasetCollection, Job, User
from repro.metrics import RunMetrics
from repro.metrics.report import format_run
from repro.network import Topology
from repro.scheduling import (
    DataLeastLoaded,
    FIFOLocalScheduler,
    JobDataPresent,
)
from repro.sim import RandomStreams, Simulator

N_SITES = 12
N_GROUPS = 4            # physics working groups
USERS_PER_GROUP = 6
JOBS_PER_USER = 25
SAMPLES_PER_GROUP = 8   # datasets each group analyses


def build_topology() -> Topology:
    """Tier-0 -> regional centers -> university sites, fat backbone."""
    return Topology.hierarchical(
        N_SITES, bandwidth_mbps=10.0, branching=4,
        backbone_multiplier=4.0)


def build_workload(streams: RandomStreams):
    rng = streams.stream("hep-workload")
    datasets = DatasetCollection()
    group_samples = {}
    for g in range(N_GROUPS):
        names = []
        for s in range(SAMPLES_PER_GROUP):
            name = f"group{g}-sample{s}"
            datasets.add(Dataset(name, rng.uniform(800, 2000)))
            names.append(name)
        group_samples[g] = names

    # Each group's users cluster at neighboring sites; each user mostly
    # analyses their group's samples, with occasional cross-group reads.
    users = []
    job_id = 0
    for g in range(N_GROUPS):
        home_sites = [f"site{(3 * g + k) % N_SITES:02d}" for k in range(3)]
        for u in range(USERS_PER_GROUP):
            user_name = f"physicist-g{g}-{u}"
            site = home_sites[u % len(home_sites)]
            jobs = []
            for _ in range(JOBS_PER_USER):
                if rng.random() < 0.85:
                    sample = rng.choice(group_samples[g])
                else:
                    other = rng.randrange(N_GROUPS)
                    sample = rng.choice(group_samples[other])
                size_gb = datasets.get(sample).size_gb
                jobs.append(Job(
                    job_id=job_id, user=user_name, origin_site=site,
                    input_files=[sample],
                    runtime_s=300.0 * size_gb))
                job_id += 1
            users.append((user_name, site, jobs))
    return datasets, group_samples, users


def main() -> None:
    streams = RandomStreams(2026)
    sim = Simulator()
    topology = build_topology()
    datasets, group_samples, users = build_workload(streams)

    grid = DataGrid.create(
        sim=sim,
        topology=topology,
        datasets=datasets,
        external_scheduler=JobDataPresent(streams.stream("es")),
        local_scheduler=FIFOLocalScheduler(),
        dataset_scheduler=DataLeastLoaded(
            streams.stream("ds"), popularity_threshold=4,
            check_interval_s=200.0, neighbor_hops=4),
        site_processors={s: 3 for s in topology.sites},
        storage_capacity_mb=40_000,
        datamover_rng=streams.stream("datamover"),
    )

    # All raw samples start at the tier-0-adjacent lab site (site00), the
    # way experiment data really lands.
    grid.place_initial_replicas(
        {name: "site00" for name in datasets.names})

    for user_name, site, jobs in users:
        grid.add_user(User(sim, user_name, site, jobs, grid))

    makespan = grid.run()
    metrics = RunMetrics.from_grid(grid, makespan)
    print(format_run(metrics, label="HEP campaign "
                     f"({N_GROUPS} groups x {USERS_PER_GROUP} physicists)"))

    # Where did each group's hot samples end up?
    print("\nreplica spread per group (initially all at site00):")
    for g, names in group_samples.items():
        replicas = sum(grid.catalog.replica_count(n) for n in names)
        print(f"  group {g}: {replicas} replicas of "
              f"{len(names)} samples "
              f"(x{replicas / len(names):.1f} average)")

    busiest = max(grid.sites.values(), key=lambda s: s.jobs_completed)
    print(f"\nbusiest site: {busiest.name} "
          f"({busiest.jobs_completed} jobs)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The paper's complete evaluation: all 72 experiments, every figure.

Reproduces §5 end to end at full Table-1 scale (takes a couple of
minutes): Figure 2 (popularity), Figures 3a/3b/4 (the 4x3 matrix at
10 MB/s), and Figure 5 (bandwidth scenarios).

Run:  python examples/full_study.py
"""

import time

from repro import SimulationConfig
from repro.experiments.paper import (
    reproduce_figure2,
    reproduce_figure3_and_4,
    reproduce_figure5,
    table1_parameters,
)
from repro.metrics.report import format_matrix
from repro.scheduling.registry import ALL_DS, ALL_ES


def main() -> None:
    config = SimulationConfig.paper()

    print("Table 1: simulation parameters")
    for key, value in table1_parameters(config).items():
        print(f"  {key:<28}{value}")

    print("\nFigure 2: top-10 dataset request counts (of 6000 jobs)")
    for name, count in reproduce_figure2(config, top_n=10):
        print(f"  {name:<14}{count:>6}")

    t0 = time.time()
    print("\nrunning the 12-combination x 3-seed sweep at 10 MB/s ...")
    result = reproduce_figure3_and_4(config, seeds=(0, 1, 2))
    print(f"({time.time() - t0:.0f} s)\n")

    print(format_matrix("Figure 3a: average response time per job (s)",
                        result.figure3a(), ALL_ES, ALL_DS))
    print()
    print(format_matrix("Figure 3b: average data transferred per job (MB)",
                        result.figure3b(), ALL_ES, ALL_DS))
    print()
    print(format_matrix("Figure 4: average idle time of processors (%)",
                        result.figure4(), ALL_ES, ALL_DS))

    t0 = time.time()
    print("\nrunning the bandwidth comparison (DS = DataLeastLoaded) ...")
    fig5 = reproduce_figure5(config, seeds=(0, 1, 2))
    print(f"({time.time() - t0:.0f} s)\n")

    print("Figure 5: response times for different bandwidth scenarios")
    print(f"  {'':<16}{'10MB/sec':>12}{'100MB/sec':>12}")
    for es in ALL_ES:
        print(f"  {es:<16}{fig5['10MB/sec'][es]:>12.1f}"
              f"{fig5['100MB/sec'][es]:>12.1f}")

    fig3a = result.figure3a()
    best = min(fig3a, key=fig3a.get)
    print(f"\nconclusion: best combination is {best[0]} + {best[1]} "
          f"({fig3a[best]:.0f} s) — scheduling jobs at the data while an "
          "independent process replicates popular datasets, i.e. "
          "computation and data scheduling can be decoupled.")


if __name__ == "__main__":
    main()

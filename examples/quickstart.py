#!/usr/bin/env python
"""Quickstart: run one Data Grid simulation and read its metrics.

This reproduces the paper's headline comparison in miniature: the coupled
baseline (run jobs locally, fetch data on demand) against the decoupled
winner (run jobs at the data, replicate popular datasets asynchronously).

Run:  python examples/quickstart.py
"""

from repro import SimulationConfig, run_single
from repro.metrics.report import format_run


def main() -> None:
    # A half-scale version of the paper's Table 1 grid: 15 sites, 60
    # users, 3000 jobs — finishes in a couple of seconds.  (Below ~0.4
    # scale the grid is too small for the hotspot effects the paper
    # studies, and the comparison loses its meaning.)
    config = SimulationConfig.paper().scaled(0.5)
    print(f"grid: {config.n_sites} sites, {config.n_users} users, "
          f"{config.n_jobs} jobs, {config.n_datasets} datasets, "
          f"{config.bandwidth_mbps:g} MB/s links\n")

    # The coupled approach: compute where the job originates, move data
    # to the job.
    coupled = run_single(config, "JobLocal", "DataDoNothing", seed=0)
    print(format_run(coupled, label="JobLocal + DataDoNothing (coupled)"))
    print()

    # The paper's winner: compute where the data is, and let an
    # independent per-site process replicate popular datasets.
    decoupled = run_single(config, "JobDataPresent", "DataRandom", seed=0)
    print(format_run(decoupled,
                     label="JobDataPresent + DataRandom (decoupled)"))
    print()

    speedup = coupled.avg_response_time_s / decoupled.avg_response_time_s
    saved = (coupled.avg_data_transferred_mb
             - decoupled.avg_data_transferred_mb)
    print(f"decoupling wins: {speedup:.2f}x faster response, "
          f"{saved:.0f} MB/job less network traffic")


if __name__ == "__main__":
    main()

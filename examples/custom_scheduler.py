#!/usr/bin/env python
"""Writing your own scheduler against the framework's interfaces.

The paper's framework is deliberately extensible: an External Scheduler is
any object with ``select_site(job, grid)``; a Dataset Scheduler is any
object with ``attach(site, grid)``.  This example adds both:

* ``JobCheapestFetch`` — an ES that estimates, for every site, queue wait
  plus (uncontended) input-fetch time and picks the minimum: a smarter
  cost model than any of the paper's four.
* ``DataPushToOrigins`` — a DS that replicates a popular dataset toward
  the site whose *users* request it most (demand-driven placement rather
  than the paper's random/least-loaded push).

Run:  python examples/custom_scheduler.py
"""

from collections import Counter, defaultdict

from repro import SimulationConfig, make_workload, run_single
from repro.experiments.runner import build_grid
from repro.metrics import RunMetrics
from repro.scheduling.base import DatasetScheduler, ExternalScheduler


class JobCheapestFetch(ExternalScheduler):
    """Send each job where (queue estimate + fetch estimate) is minimal."""

    name = "JobCheapestFetch"

    #: Rough seconds of queue delay implied per waiting job (a tuning
    #: constant; a real system would learn it).
    SECONDS_PER_QUEUED_JOB = 150.0

    def select_site(self, job, grid):
        best_site, best_cost = None, float("inf")
        for site in grid.info.site_names:
            queue_cost = (grid.info.load(site)
                          * self.SECONDS_PER_QUEUED_JOB)
            fetch_cost = 0.0
            for fname in job.input_files:
                if grid.catalog.has_replica(fname, site):
                    continue
                locations = grid.catalog.locations(fname)
                if not locations:
                    fetch_cost = float("inf")
                    break
                size = grid.datasets.get(fname).size_mb
                fetch_cost += min(
                    grid.transfers.estimated_transfer_time(src, site, size)
                    for src in locations)
            cost = queue_cost + fetch_cost
            if cost < best_cost:
                best_site, best_cost = site, cost
        return best_site


class DataPushToOrigins(DatasetScheduler):
    """Replicate popular datasets toward the sites that ask for them.

    Each site tracks which origin sites requested its datasets (via a
    completion listener) and pushes a hot dataset to its top requester.
    """

    name = "DataPushToOrigins"

    def __init__(self, popularity_threshold=5, check_interval_s=300.0):
        self.popularity_threshold = popularity_threshold
        self.check_interval_s = check_interval_s
        # (site, dataset) -> Counter of requesting origin sites
        self.demand = defaultdict(Counter)

    def attach(self, site, grid):
        site.completion_listeners.append(
            lambda job, _site=site: self._observe(_site, job))
        site.sim.process(self._loop(site, grid),
                         name=f"push-ds:{site.name}")

    def _observe(self, site, job):
        for fname in job.input_files:
            self.demand[(site.name, fname)][job.origin_site] += 1

    def _loop(self, site, grid):
        while True:
            yield site.sim.timeout(self.check_interval_s)
            for fname, count in sorted(site.storage.access_counts.items()):
                if count < self.popularity_threshold:
                    continue
                if fname not in site.storage:
                    continue
                site.storage.reset_popularity(fname)
                wanters = self.demand.get((site.name, fname))
                if not wanters:
                    continue
                target = max(sorted(wanters), key=wanters.__getitem__)
                if (target != site.name
                        and not grid.catalog.has_replica(fname, target)):
                    grid.datamover.replicate(fname, site.name, target)


def main() -> None:
    config = SimulationConfig.paper().scaled(0.25)
    workload = make_workload(config, seed=0)

    # Baseline: the paper's best combination.
    paper_best = run_single(config, "JobDataPresent", "DataLeastLoaded",
                            workload=workload, seed=0)

    # Custom pair, wired through the same machinery.
    sim, grid = build_grid(config, "JobLocal", "DataDoNothing",
                           workload.fresh(), seed=0)
    grid.external_scheduler = JobCheapestFetch()
    custom_ds = DataPushToOrigins(popularity_threshold=4,
                                  check_interval_s=200.0)
    for site in grid.sites.values():
        custom_ds.attach(site, grid)
    makespan = grid.run()
    custom = RunMetrics.from_grid(grid, makespan)

    print(f"{'configuration':<42}{'resp(s)':>9}{'MB/job':>9}{'idle%':>7}")
    for label, m in [
        ("paper best (JobDataPresent+DataLeastLoaded)", paper_best),
        ("custom (JobCheapestFetch+DataPushToOrigins)", custom),
    ]:
        print(f"{label:<42}{m.avg_response_time_s:>9.1f}"
              f"{m.avg_data_transferred_mb:>9.1f}{m.idle_percent:>7.1f}")

    print("\nThe custom cost-model scheduler trades some extra data "
          "movement for queue balance; whether it wins depends on the "
          "bandwidth regime — exactly the paper's decoupling point: you "
          "can iterate on either policy without touching the other.")


if __name__ == "__main__":
    main()

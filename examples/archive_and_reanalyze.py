#!/usr/bin/env python
"""Archive a sweep once, re-analyze it forever.

A full algorithm sweep takes real time; its *analysis* shouldn't.  This
example runs a (scaled) 4x3 matrix, archives it as versioned JSON, then
reloads the archive and answers questions the original run never asked —
including a statistical test of the paper's C5 equivalence claim.

Run:  python examples/archive_and_reanalyze.py
"""

import tempfile
from pathlib import Path

from repro import SimulationConfig, run_matrix
from repro.experiments.persistence import load_matrix, save_matrix
from repro.metrics.report import format_matrix
from repro.metrics.stats import confidence_interval, welch_t_test
from repro.scheduling.registry import ALL_DS, ALL_ES


def main() -> None:
    config = SimulationConfig.paper().scaled(0.25)
    archive = Path(tempfile.gettempdir()) / "repro_study.json"

    print(f"running the 4x3 matrix at scale 0.25 ({config.n_jobs} jobs, "
          "3 seeds) ...")
    result = run_matrix(config, seeds=(0, 1, 2))
    save_matrix(result, archive)
    print(f"archived to {archive} "
          f"({archive.stat().st_size / 1024:.0f} KiB)\n")

    # --- everything below touches only the archive ---
    result = load_matrix(archive)

    print(format_matrix(
        "Response time (s) from the archive",
        result.metric_matrix("avg_response_time_s"), ALL_ES, ALL_DS))

    # Question 1: confidence interval on the winner.
    winner = result.runs[("JobDataPresent", "DataLeastLoaded")]
    values = [m.avg_response_time_s for m in winner]
    lo, hi = confidence_interval(values, level=0.95)
    print(f"\nJobDataPresent+DataLeastLoaded response time: "
          f"{sum(values) / len(values):.1f} s "
          f"(95% CI [{lo:.1f}, {hi:.1f}])")

    # Question 2: the paper's C5 claim, as a hypothesis test.
    a = [m.avg_response_time_s
         for m in result.runs[("JobDataPresent", "DataRandom")]]
    b = [m.avg_response_time_s
         for m in result.runs[("JobDataPresent", "DataLeastLoaded")]]
    test = welch_t_test(a, b)
    verdict = ("no significant difference"
               if not test.significant_at_5pct else "significant")
    print(f"C5 (DataRandom vs DataLeastLoaded): p = {test.p_value:.3f} "
          f"-> {verdict}, matching the paper")

    # Question 3: where did the traffic go?
    mb = result.metric_matrix("avg_data_transferred_mb")
    heaviest = max(mb, key=mb.get)
    lightest = min(mb, key=mb.get)
    print(f"heaviest mover: {heaviest[0]}+{heaviest[1]} "
          f"({mb[heaviest]:.0f} MB/job); lightest: "
          f"{lightest[0]}+{lightest[1]} ({mb[lightest]:.0f} MB/job)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Bandwidth sensitivity: where does "move the job to the data" stop
mattering?

The paper's §5.4 observation is that at 10x bandwidth JobLocal catches up
with JobDataPresent.  This example sweeps bandwidth across two orders of
magnitude and prints the response-time crossover — the regime boundary the
paper's future-work adaptive scheduler would exploit.

Run:  python examples/bandwidth_sensitivity.py
"""

from repro import SimulationConfig, run_single

BANDWIDTHS = (2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 200.0)
SCHEDULERS = ("JobLocal", "JobDataPresent")


def main() -> None:
    config = SimulationConfig.paper().scaled(0.25)
    print(f"grid: {config.n_sites} sites, {config.n_jobs} jobs; "
          "DS = DataLeastLoaded\n")
    header = f"{'MB/s':>6}" + "".join(f"{es:>18}" for es in SCHEDULERS)
    print(header + f"{'local/data ratio':>18}")

    crossover = None
    for bw in BANDWIDTHS:
        scenario = config.with_(bandwidth_mbps=bw)
        times = {
            es: run_single(scenario, es, "DataLeastLoaded",
                           seed=0).avg_response_time_s
            for es in SCHEDULERS
        }
        ratio = times["JobLocal"] / times["JobDataPresent"]
        if crossover is None and ratio <= 1.1:
            crossover = bw
        row = f"{bw:>6g}" + "".join(
            f"{times[es]:>18.1f}" for es in SCHEDULERS)
        print(row + f"{ratio:>18.2f}")

    print()
    if crossover is not None:
        print(f"JobLocal pulls within 10% of JobDataPresent at "
              f"~{crossover:g} MB/s — above that, moving data to jobs is "
              "viable and 'there is no clear winner' (paper §5.4).")
    else:
        print("JobLocal never catches up in this sweep: data locality "
              "dominates at every tested bandwidth.")


if __name__ == "__main__":
    main()

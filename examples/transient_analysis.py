#!/usr/bin/env python
"""Watching a run unfold: transient analysis with GridMonitor.

The paper's figures are end-of-run averages; this example samples the
grid every 250 simulated seconds to show *why* the decoupled combination
wins — the no-replication hotspot builds a queue that never drains, while
under DataRandom the replication process dissolves it within a few
periods.

Run:  python examples/transient_analysis.py
"""

from repro import SimulationConfig, build_grid, make_workload
from repro.metrics.timeseries import GridMonitor


def monitored_run(config, es, ds, seed=0):
    workload = make_workload(config, seed=seed)
    sim, grid = build_grid(config, es, ds, workload, seed=seed)
    monitor = GridMonitor(grid, period_s=250.0, track_site_queues=True)
    grid.run()
    return grid, monitor


def main() -> None:
    config = SimulationConfig.paper().scaled(0.5)
    print(f"grid: {config.n_sites} sites, {config.n_jobs} jobs\n")

    for es, ds in [("JobDataPresent", "DataDoNothing"),
                   ("JobDataPresent", "DataRandom")]:
        grid, monitor = monitored_run(config, es, ds)
        label = f"{es} + {ds}"
        print(f"=== {label} ===")
        print(monitor.render("queued_jobs", width=64, height=10))

        t50 = monitor.time_of_completion_fraction(0.5)
        t95 = monitor.time_of_completion_fraction(0.95)
        peak_t, peak_q = monitor.peak("queued_jobs")
        print(f"peak queue {peak_q:.0f} jobs at t={peak_t:.0f} s; "
              f"50% done at {t50:.0f} s, 95% at {t95:.0f} s")

        hottest = max(grid.sites, key=lambda s: max(
            monitor.site_queue_series(s)))
        print(f"hottest site: {hottest} "
              f"(queue peaked at "
              f"{max(monitor.site_queue_series(hottest))})")
        replicas = monitor.series("total_replicas")
        print(f"replicas: {replicas[0]:.0f} -> {replicas[-1]:.0f}\n")

    print("Without replication the hottest site's queue only drains as "
          "jobs grind through it; with DataRandom the Dataset Scheduler "
          "notices the popularity within a period or two, copies the hot "
          "files away, and JobDataPresent immediately spreads the load.")


if __name__ == "__main__":
    main()
